"""Img-only / Anlys pipeline pieces shared by all solutions (§IV, §V).

Workloads (Table II): **Img-only** plots one image per altitude level per
timestamp for the selected variable. **Anlys** adds SQL analysis in the
map tasks and animation/result aggregation in reduce.

Map functions come in two flavours matching the two data paths:

- text mappers (Naive / Vanilla Hadoop / PortHadoop): parse a converted
  CSV level with R's ``read.table`` cost, then plot;
- binary mappers (SciHadoop / SciDP): the level arrives as an ndarray,
  pays only the fast binary→data.frame conversion, then plots.

All compute charges go through :mod:`repro.costs` so the experiment
scale factor applies uniformly.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro import costs
from repro.formats.text import parse_csv_fast
from repro.rlang.frame import data_frame
from repro.rlang.plot import image2d, plot_cost_model
from repro.rlang.sqldf import sqldf

__all__ = [
    "ANALYSES",
    "animation_mapper",
    "animation_reducer",
    "binary_level_mapper",
    "collect_reducer",
    "image_equivalent_bytes",
    "plot_seconds",
    "sql_seconds",
    "text_level_mapper",
]

#: Resolution the paper renders at (§V-A) — used for *cost* accounting.
PAPER_RESOLUTION = (1200, 1200)
#: Resolution we actually rasterise at — keeps wall-clock and memory sane
#: while producing real, decodable PNGs. 48x48 frames (~1 KB) land at
#: ~0.7 MB after the x678 scale, matching a deflate-compressed 1200x1200
#: weather frame, so shuffle and HDFS-write volumes stay faithful.
FUNCTIONAL_RESOLUTION = (48, 48)
#: Bytes of one paper-resolution PNG frame (~3 B/pixel before filter
#: savings); what reduce-side animation aggregation is charged for.
PAPER_FRAME_BYTES = PAPER_RESOLUTION[0] * PAPER_RESOLUTION[1] * 3
#: Animation encode rate at paper scale, bytes of frame data per second.
ANIMATION_ENCODE_BYTES_PER_SEC = 200 * 1024 * 1024


def plot_seconds(level_elements: int) -> float:
    """Simulated cost of plotting one level.

    ``level_elements`` is the *scaled* grid size; multiplying by the
    experiment scale recovers the paper-equivalent element count, putting
    the charge near the ~0.06 s/level Plot bar of Fig. 7 regardless of
    the functional grid in use.
    """
    return plot_cost_model(
        int(level_elements * costs.get_scale()), PAPER_RESOLUTION)


def sql_seconds(n_rows: int) -> float:
    """Simulated cost of one SQL query over ``n_rows`` scaled rows."""
    return (costs.SQL_QUERY_OVERHEAD
            + n_rows / costs.SQL_ROWS_PER_SEC)


def image_equivalent_bytes(n_frames: int) -> int:
    """Paper-scale bytes of ``n_frames`` rendered frames."""
    return n_frames * PAPER_FRAME_BYTES


# --------------------------------------------------------------------------
# Analyses (Fig. 9 cases)
# --------------------------------------------------------------------------

def _level_frame(level: np.ndarray):
    ys, xs = np.meshgrid(
        np.arange(level.shape[0]), np.arange(level.shape[1]),
        indexing="ij")
    return {
        "d": data_frame(
            longitude=ys.ravel(), latitude=xs.ravel(),
            value=level.ravel().astype(np.float64)),
    }


def _analysis_none(ctx, key, level):
    return None, []


def _analysis_highlight(ctx, key, level):
    """Top-10 highlight (Fig. 9 `highlight`): small query, tiny extra
    output — "the analysis takes very short time"."""
    frames = _level_frame(level)
    top = sqldf("SELECT longitude, latitude, value FROM d "
                "ORDER BY value DESC LIMIT 10", frames)
    ctx.charge(sql_seconds(level.size), "analysis")
    points = list(zip(top["longitude"].astype(int),
                      top["latitude"].astype(int)))
    return points, []


def _analysis_top_percent(ctx, key, level):
    """Top-1% selection stored to HDFS (Fig. 9 `top 1%`): result size is
    proportional to the input, so shuffle + HDFS writes grow."""
    frames = _level_frame(level)
    k = max(1, level.size // 100)
    top = sqldf("SELECT longitude, latitude, value FROM d "
                f"ORDER BY value DESC LIMIT {k}", frames)
    ctx.charge(sql_seconds(level.size), "analysis")
    rows = np.column_stack([
        top["longitude"].astype(np.float32),
        top["latitude"].astype(np.float32),
        top["value"].astype(np.float32),
    ])
    return None, [((key, "top1pct"), rows)]


ANALYSES: dict[str, Callable] = {
    "none": _analysis_none,
    "highlight": _analysis_highlight,
    "top1pct": _analysis_top_percent,
}


# --------------------------------------------------------------------------
# Map functions
# --------------------------------------------------------------------------

def _plot_level(ctx, key, level: np.ndarray, analysis: str):
    """Shared tail: optional analysis, then the actual plot + charges."""
    analyse = ANALYSES[analysis]
    highlight, extra_records = analyse(ctx, key, level)
    png = image2d(level, resolution=FUNCTIONAL_RESOLUTION,
                  highlight=highlight)
    ctx.charge(plot_seconds(level.size), "plot")
    ctx.counters.increment("pipeline", "levels_plotted", 1)
    ctx.emit((key, "png"), png)
    for record_key, record_value in extra_records:
        ctx.emit(record_key, record_value)


def text_level_mapper(variable: str = "QR", analysis: str = "none"):
    """Mapper over converted CSV level files (Naive/Vanilla/PortHadoop).

    ``value`` is the raw text of one level. The dominant charge is the
    sequential ``read.table`` parse (Fig. 7's Convert bar).
    """

    def mapper(ctx, key, value: bytes):
        ctx.charge(len(value) / costs.TEXT_PARSE_BYTES_PER_SEC, "convert")
        tables = parse_csv_fast(value)
        level = tables[variable]
        _plot_level(ctx, key, level, analysis)

    return mapper


def binary_level_mapper(variable: str = "QR", analysis: str = "none"):
    """Mapper over binary hyperslabs (SciHadoop/SciDP).

    ``value`` is an ndarray (levels × lon × lat, often a single level).
    The binary→R conversion is "a very short time" (§V-D).
    """

    def mapper(ctx, key, value: np.ndarray):
        ctx.charge(value.nbytes / costs.BINARY_CONVERT_BYTES_PER_SEC,
                   "convert")
        levels = value if value.ndim == 3 else value[None, ...]
        for z in range(levels.shape[0]):
            _plot_level(ctx, (key, z), levels[z], analysis)

    return mapper


# --------------------------------------------------------------------------
# Reduce
# --------------------------------------------------------------------------

def animation_mapper(variable: str = "QR"):
    """Map side of the animation phase: key each level by its altitude
    so one reducer can animate that level across all timestamps
    (§II-A's "series of images generated along a specific dimension")."""

    def mapper(ctx, key, value: np.ndarray):
        source = key[0] if isinstance(key, tuple) else str(key)
        levels = value if value.ndim == 3 else value[None, ...]
        z0 = key[2][0] if isinstance(key, tuple) and len(key) > 2 else 0
        for dz in range(levels.shape[0]):
            ctx.emit(z0 + dz, (source, levels[dz]))
        ctx.charge(value.nbytes / costs.BINARY_CONVERT_BYTES_PER_SEC,
                   "convert")

    return mapper


def animation_reducer(resolution: tuple[int, int] = (48, 48),
                      colormap: str = "jet"):
    """Reduce side: order one altitude level's frames by timestamp and
    encode a real animated GIF, charging the paper-scale encode cost."""
    from repro.rlang.animation import animate_fields

    def reducer(ctx, key, values):
        ordered = [field for _source, field in sorted(
            values, key=lambda sv: sv[0])]
        gif = animate_fields(ordered, resolution=resolution,
                             colormap=colormap)
        ctx.charge(image_equivalent_bytes(len(ordered))
                   / ANIMATION_ENCODE_BYTES_PER_SEC, "animate")
        ctx.counters.increment("pipeline", "animations", 1)
        ctx.counters.increment("pipeline", "animation_frames",
                               len(ordered))
        ctx.emit(key, gif)

    return reducer


def collect_reducer(animate: bool = False):
    """Gathers frames (and analysis rows) per key group; with ``animate``
    the reducer pays the animation-encode cost for its frames before the
    engine persists its output to HDFS."""

    def reducer(ctx, key, values):
        if isinstance(key, tuple) and key[-1] == "png":
            n_frames = len(values)
            ctx.counters.increment("pipeline", "frames_collected", n_frames)
            if animate:
                ctx.charge(image_equivalent_bytes(n_frames)
                           / ANIMATION_ENCODE_BYTES_PER_SEC, "animate")
            # Keep one representative frame per key; recording every
            # frame would just re-upload the map outputs.
            ctx.emit(key, (n_frames, values[0]))
        else:
            ctx.emit(key, values if len(values) > 1 else values[0])

    return reducer
