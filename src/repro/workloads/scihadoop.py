"""SciHadoop baseline: scientific-format processing of data ON HDFS.

SciHadoop [Buck et al., SC'11] teaches Hadoop the array structure of
scientific files that already live on HDFS ("these solutions target
processing scientific data particularly on HDFS", §I). The whole netCDF
file must first be copied from the PFS — including the 22 variables the
job never touches, the redundant I/O §V-B blames for SciHadoop's gap.

``SciHadoopInputFormat`` parses the SCNC header of each HDFS-resident
file and produces one split per chunk of the selected variables; records
are decoded ndarrays, so jobs use the same binary mappers as SciDP.
"""

from __future__ import annotations

import io
import zlib
from typing import Optional

import numpy as np

from repro import costs
from repro.formats.container import read_header
from repro.mapreduce.config import MapReduceError
from repro.mapreduce.input_format import InputSplit

__all__ = ["SciHadoopInputFormat", "read_hdfs_range"]


def read_hdfs_range(client, blocks, offset: int, length: int):
    """Read an arbitrary byte range of an HDFS file. DES process.

    Walks the block list, issuing one ``read_block`` per overlapped block
    — how a real positioned read behaves.
    """
    parts = []
    pos = 0
    end = offset + length
    for block in blocks:
        block_start = pos
        block_end = pos + block.length
        pos = block_end
        lo = max(offset, block_start)
        hi = min(end, block_end)
        if lo >= hi:
            continue
        parts.append((yield client.env.process(client.read_block(
            block, lo - block_start, hi - lo))))
    data = b"".join(parts)
    if len(data) != length:
        raise MapReduceError(
            f"short HDFS range read: {len(data)} != {length}")
    return data


class SciHadoopInputFormat:
    """One split per (selected) variable chunk of HDFS-resident SCNC files."""

    def __init__(self, variables: Optional[list[str]] = None):
        self.variables = variables
        #: per-path parsed headers, shared across splits of a job
        self._headers: dict[str, object] = {}

    def _selected(self, var) -> bool:
        if self.variables is None:
            return True
        return var.name in self.variables or var.path in self.variables

    def get_splits(self, job, storage, client):
        """DES process returning list[InputSplit]."""
        splits: list[InputSplit] = []
        for path in job.input_paths:
            listing = yield client.env.process(client.listdir(path))
            files = listing if listing else [path]
            for file_path in files:
                blocks = yield client.env.process(
                    client.get_block_locations(file_path))
                # Header read: fetch the header region through HDFS, then
                # parse. (The paper's SciHadoop equally reads headers up
                # front to build its physical-to-logical mapping.)
                probe = yield client.env.process(read_hdfs_range(
                    client, blocks, 0, min(64, blocks[0].length)))
                header_view = io.BytesIO(
                    storage.read_file_sync(file_path))
                del probe
                header = read_header(header_view)
                self._headers[file_path] = (header, blocks)
                index = 0
                for var_path in header.variable_paths():
                    var = header.variable(var_path)
                    if not self._selected(var):
                        continue
                    for rec in var.chunks:
                        slices = var.chunk_slices(rec.index)
                        locations: list[str] = []
                        # Locality: the chunk's bytes live in specific
                        # HDFS blocks; prefer their holders.
                        chunk_at = header.data_start + rec.offset
                        pos = 0
                        for block in blocks:
                            if pos <= chunk_at < pos + block.length:
                                locations = list(block.locations)
                                break
                            pos += block.length
                        splits.append(InputSplit(
                            path=file_path,
                            index=index,
                            length=rec.nbytes,
                            locations=locations,
                            meta={
                                "variable": var.path,
                                "dtype": var.dtype.str,
                                "offset": header.data_start + rec.offset,
                                "nbytes": rec.nbytes,
                                "raw_nbytes": rec.raw_nbytes,
                                "start": [s.start for s in slices],
                                "count": [s.stop - s.start for s in slices],
                                "compressed": header.variables[
                                    var_path].compressed,
                            },
                        ))
                        index += 1
        if not splits:
            raise MapReduceError(f"no input found under {job.input_paths}")
        return splits

    def read_records(self, split: InputSplit, client, ctx):
        """DES process returning [((path, variable, start), ndarray)]."""
        meta = split.meta
        blocks = yield client.env.process(
            client.get_block_locations(split.path))
        stored = yield client.env.process(read_hdfs_range(
            client, blocks, meta["offset"], meta["nbytes"]))
        raw = zlib.decompress(stored) if meta["compressed"] else stored
        if len(raw) != meta["raw_nbytes"]:
            raise MapReduceError("chunk payload mismatch")
        if meta["compressed"]:
            yield client.env.timeout(
                len(raw) / costs.DECOMPRESS_BYTES_PER_SEC)
        arr = np.frombuffer(raw, dtype=np.dtype(meta["dtype"])).reshape(
            tuple(meta["count"]))
        ctx.counters.increment("io", "bytes_read", len(stored))
        key = (split.path, meta["variable"], tuple(meta["start"]))
        return [(key, arr)]
