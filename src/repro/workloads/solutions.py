"""The five data paths of Table I, runnable on one experiment world.

| Solution       | Conversion | Data copy   | Processing |
|----------------|-----------:|------------:|-----------:|
| Naive          | yes        | sequential  | sequential |
| Vanilla Hadoop | yes        | parallel    | parallel   |
| PortHadoop     | yes        | no          | parallel   |
| SciHadoop      | no         | parallel    | parallel   |
| SciDP          | no         | no          | parallel   |

Conversion time is *excluded* from totals ("we do not count the
conversion time into the total time in any tests of this paper", §V-A)
but is still modelled and reported. Copy time is measured separately and
added on top of processing, exactly as the paper presents Fig. 5.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import costs
from repro.cluster import Cluster
from repro.cluster.spec import (
    chameleon_compute_spec,
    chameleon_storage_spec,
    scale_spec,
)
from repro.core import SciDP
from repro.formats import scinc
from repro.hdfs import HDFS
from repro.mapreduce import BytesInputFormat, JobConf, JobRunner
from repro.pfs import PFS, PFSClient, StripeLayout
from repro.sim import AllOf, Environment
from repro.workloads.nuwrf import NUWRFConfig, generate_nuwrf
from repro.workloads.pipeline import (
    binary_level_mapper,
    collect_reducer,
    text_level_mapper,
)
from repro.workloads.scihadoop import SciHadoopInputFormat

__all__ = [
    "SOLUTIONS",
    "ExperimentWorld",
    "SolutionResult",
    "build_world",
    "run_solution",
]

#: Paper low-res level grid (longitude x latitude).
PAPER_LEVEL_ELEMENTS = 1250 * 1250


@dataclass
class ExperimentWorld:
    """Everything one experiment run needs."""

    env: Environment
    cluster: Cluster
    nodes: list                      # Hadoop compute nodes
    pfs: PFS
    hdfs: HDFS
    scidp: SciDP
    config: NUWRFConfig
    manifest: dict
    nc_dir: str
    text_dir: str
    variable: str = "QR"
    text_files: list[str] = field(default_factory=list)
    #: modelled (uncounted) conversion time, seconds
    conversion_time: float = 0.0
    #: monotonically increasing id so repeated runs on one world get
    #: distinct job names and output paths
    job_seq: int = 0


@dataclass
class SolutionResult:
    """One solution's run, decomposed the way Fig. 5 reports it."""

    solution: str
    workload: str
    n_timesteps: int
    copy_time: float
    process_time: float
    conversion_time_not_counted: float
    phase_means: dict[str, float] = field(default_factory=dict)
    #: mean per-reduce-task phase durations (shuffle/copy, merge, reduce)
    reduce_phase_means: dict[str, float] = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    frames: int = 0
    #: makespan of the map (image plotting) phase alone — what Fig. 8's
    #: scale-out curve tracks
    map_phase_time: float = 0.0

    @property
    def total_time(self) -> float:
        return self.copy_time + self.process_time


def _level_text(level: np.ndarray, var_id: int = 0,
                name: str = "QR") -> bytes:
    """CSV dump of one level in the fast numeric format."""
    flat = level.reshape(-1)
    ys, xs = np.unravel_index(np.arange(flat.size), level.shape)
    parts = [
        np.char.mod("%d", np.full(flat.size, var_id)),
        np.char.mod("%d", ys),
        np.char.mod("%d", xs),
        np.char.mod("%.8e", flat.astype(np.float64)),
    ]
    rows = parts[0]
    for part in parts[1:]:
        rows = np.char.add(np.char.add(rows, ","), part)
    return (f"#vars:{name}\n").encode() + \
        "\n".join(rows.tolist()).encode() + b"\n"


def build_world(n_timesteps: int = 12,
                shape: tuple[int, int, int] = (8, 48, 48),
                n_nodes: int = 8,
                slots_per_node: int = 8,
                n_osts: int = 24,
                variable: str = "QR",
                with_text: bool = True,
                seed: int = 20180710) -> ExperimentWorld:
    """Build the scaled Chameleon-like testbed with NU-WRF data loaded.

    The scale factor S = paper level elements / simulated level elements
    is applied to device bandwidths and software rates, making simulated
    seconds directly comparable to the paper's (see DESIGN.md §5-6).
    """
    scale = PAPER_LEVEL_ELEMENTS / (shape[1] * shape[2])
    costs.set_scale(scale)

    env = Environment()
    cluster = Cluster(env)
    compute = scale_spec(chameleon_compute_spec(), scale)
    nodes = [cluster.add_node(f"hadoop{i}", compute, role="compute")
             for i in range(n_nodes)]
    mds_node = cluster.add_node(
        "mds", scale_spec(chameleon_storage_spec(1), scale), role="storage")
    per_oss = n_osts // 2
    oss_nodes = [
        cluster.add_node(f"oss{i}",
                         scale_spec(chameleon_storage_spec(per_oss), scale),
                         role="storage")
        for i in range(2)
    ]
    # Lustre: 1 MB stripes, wide striping over all 24 OSTs (§V-A). The
    # stripe scales with the data so a variable's chunks spread across
    # OSTs exactly as the paper's 91 MB variables spread over 1 MB
    # stripes.
    stripe = max(1024, int(1024 * 1024 / scale))
    pfs = PFS(env, cluster.network, mds_node, oss_nodes,
              default_layout=StripeLayout(stripe_size=stripe,
                                          stripe_count=n_osts))
    block_size = max(64 * 1024, int(128 * 1024 * 1024 / scale))
    hdfs = HDFS(env, cluster.network, block_size=block_size, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    scidp = SciDP(env, nodes, pfs, hdfs, cluster.network,
                  flat_block_size=block_size)

    config = NUWRFConfig(shape=shape, timesteps=n_timesteps, seed=seed)
    manifest = generate_nuwrf(pfs, config, directory="/nuwrf")

    world = ExperimentWorld(
        env=env, cluster=cluster, nodes=nodes, pfs=pfs, hdfs=hdfs,
        scidp=scidp, config=config, manifest=manifest,
        nc_dir="/nuwrf", text_dir="/nuwrf_text", variable=variable)

    if with_text:
        _convert_to_text(world)
    return world


def _convert_to_text(world: ExperimentWorld) -> None:
    """Offline conversion the text baselines need: one CSV file per level
    per timestamp (the manual partitioning PortHadoop requires,
    §III-A.2), stored back on the PFS with zero simulated time. The
    modelled duration is recorded but never counted (§V-A)."""
    converted_bytes = 0
    source_bytes = 0
    for path in world.manifest["files"]:
        reader = scinc.Reader(world.pfs.open_sync(path))
        data = reader.get_vara("/" + world.variable)
        base = path.rsplit("/", 1)[-1]
        for z in range(data.shape[0]):
            text = _level_text(data[z], name=world.variable)
            text_path = (f"{world.text_dir}/{base}/"
                         f"{world.variable}_L{z:02d}.csv")
            world.pfs.store_file(text_path, text)
            world.text_files.append(text_path)
            converted_bytes += len(text)
        source_bytes += world.pfs.mds.lookup(path).size
    world.conversion_time = (
        source_bytes / costs.FORMAT_CONVERT_BYTES_PER_SEC)


# --------------------------------------------------------------------------
# Copy phases
# --------------------------------------------------------------------------

def _copy_files(world: ExperimentWorld, files: list[str],
                parallel: bool, to_hdfs: bool = True):
    """Copy PFS files to HDFS (distcp-like) or to node0's local disk
    (the naive path). DES process returning elapsed seconds."""
    env = world.env
    start = env.now
    queue = list(files)

    def copier(node):
        client = PFSClient(world.pfs, node)
        hdfs_client = world.hdfs.client(node)
        while queue:
            path = queue.pop(0)
            data = yield env.process(client.read(path))
            if to_hdfs:
                yield env.process(hdfs_client.write(path, data))
            else:
                yield node.disk.write(len(data))

    if parallel:
        workers = [env.process(copier(node)) for node in world.nodes]
        yield AllOf(env, workers)
    else:
        yield env.process(copier(world.nodes[0]))
    return env.now - start


# --------------------------------------------------------------------------
# Solutions
# --------------------------------------------------------------------------

def _job(world: ExperimentWorld, name: str, mapper, input_format,
         input_paths: list[str], analysis: str,
         slots_per_node: int = 8) -> JobConf:
    world.job_seq += 1
    unique = f"{name}-{world.job_seq:03d}"
    return JobConf(
        name=unique,
        mapper=mapper,
        reducer=collect_reducer(animate=analysis != "none"),
        input_format=input_format,
        n_reducers=max(1, len(world.nodes) // 2),
        input_paths=input_paths,
        output_path=f"/results/{unique}",
        map_slots_per_node=slots_per_node,
    )


def _run_job(world: ExperimentWorld, job: JobConf):
    runner = JobRunner(world.env, world.nodes, world.hdfs,
                       world.cluster.network, job)
    result = yield world.env.process(runner.run())
    return result


def _summarize(world, solution, workload, copy_time, job_result,
               process_time) -> SolutionResult:
    map_phase = 0.0
    if job_result is not None:
        maps = job_result.stats_for("map")
        if maps:
            map_phase = max(s.end for s in maps) - min(s.start for s in maps)
    return SolutionResult(
        map_phase_time=map_phase,
        solution=solution,
        workload=workload,
        n_timesteps=world.config.timesteps,
        copy_time=copy_time,
        process_time=process_time,
        conversion_time_not_counted=(
            world.conversion_time if solution in
            ("naive", "vanilla", "porthadoop") else 0.0),
        phase_means=(job_result.phase_means("map")
                     if job_result is not None else {}),
        reduce_phase_means=(job_result.phase_means("reduce")
                            if job_result is not None else {}),
        counters=(job_result.counters.as_dict()
                  if job_result is not None else {}),
        frames=(job_result.counters.value("pipeline", "levels_plotted")
                if job_result is not None else 0),
    )


def run_naive(world: ExperimentWorld, analysis: str = "none"):
    """Sequential copy + sequential single-node processing. DES process.

    No Hadoop: one R process on one node reads each converted level from
    its local disk, parses, and plots — contention-free but serial
    (§V-B: "it processes data in a sequential fashion").
    """
    env = world.env
    copy_time = yield env.process(_copy_files(
        world, world.text_files, parallel=False, to_hdfs=False))

    from repro.mapreduce.task import TaskContext
    from repro.workloads.pipeline import ANALYSES, plot_seconds
    from repro.formats.text import parse_csv_fast
    from repro.rlang.plot import image2d
    from repro.workloads import pipeline

    node = world.nodes[0]
    ctx = TaskContext(env, node, _job(world, "naive", lambda *a: None,
                                      BytesInputFormat(), ["/x"], analysis),
                      "naive-serial")
    start = env.now
    phases = {"read": 0.0, "convert": 0.0, "plot": 0.0, "analysis": 0.0}
    frames = 0
    for path in world.text_files:
        size = world.pfs.mds.lookup(path).size
        t0 = env.now
        yield node.disk.read(size)  # local sequential read
        phases["read"] += env.now - t0
        text = world.pfs.read_file_sync(path)
        t0 = env.now
        yield env.timeout(len(text) / costs.TEXT_PARSE_BYTES_PER_SEC)
        phases["convert"] += env.now - t0
        level = parse_csv_fast(text)[world.variable]
        highlight, _extra = ANALYSES[analysis](ctx, path, level)
        for charge_phase, seconds in ctx.take_charges().items():
            t0 = env.now
            yield env.timeout(seconds)
            phases[charge_phase] = phases.get(charge_phase, 0.0) \
                + (env.now - t0)
        t0 = env.now
        # Naive plots slightly faster per level: no memory/disk
        # contention from co-running tasks (§V-D).
        yield env.timeout(0.85 * plot_seconds(level.size))
        phases["plot"] += env.now - t0
        image2d(level, resolution=pipeline.FUNCTIONAL_RESOLUTION,
                highlight=highlight)
        frames += 1
    process_time = env.now - start
    result = _summarize(world, "naive", _workload_name(analysis),
                        copy_time, None, process_time)
    result.phase_means = {p: t / max(1, frames)
                          for p, t in phases.items() if t > 0}
    result.frames = frames
    return result


def run_vanilla(world: ExperimentWorld, analysis: str = "none"):
    """Parallel text copy to HDFS + parallel text processing. DES process."""
    env = world.env
    copy_time = yield env.process(_copy_files(
        world, world.text_files, parallel=True, to_hdfs=True))
    job = _job(world, "vanilla", text_level_mapper(world.variable, analysis),
               BytesInputFormat(), [world.text_dir], analysis)
    job.input_paths = sorted(
        {p.rsplit("/", 1)[0] for p in world.text_files})
    t0 = env.now
    job_result = yield env.process(_run_job(world, job))
    return _summarize(world, "vanilla", _workload_name(analysis),
                      copy_time, job_result, env.now - t0)


def run_porthadoop(world: ExperimentWorld, analysis: str = "none"):
    """No copy: text processed straight off the PFS via virtual flat
    blocks (PortHadoop's design — SciDP's flat path IS PortHadoop's
    reader, §III). Conversion still required. DES process."""
    env = world.env
    input_format = world.scidp.input_format()
    dirs = sorted({p.rsplit("/", 1)[0] for p in world.text_files})
    job = _job(world, "porthadoop",
               text_level_mapper(world.variable, analysis),
               input_format,
               [f"pfs://{d}" for d in dirs], analysis)
    t0 = env.now
    job_result = yield env.process(_run_job(world, job))
    return _summarize(world, "porthadoop", _workload_name(analysis),
                      0.0, job_result, env.now - t0)


def run_scihadoop(world: ExperimentWorld, analysis: str = "none"):
    """Parallel copy of WHOLE netCDF files to HDFS (all 23 variables —
    the redundant I/O of §V-B), then chunk-level binary processing on
    HDFS. DES process."""
    env = world.env
    copy_time = yield env.process(_copy_files(
        world, list(world.manifest["files"]), parallel=True, to_hdfs=True))
    job = _job(world, "scihadoop",
               binary_level_mapper(world.variable, analysis),
               SciHadoopInputFormat(variables=[world.variable]),
               [world.nc_dir], analysis)
    t0 = env.now
    job_result = yield env.process(_run_job(world, job))
    return _summarize(world, "scihadoop", _workload_name(analysis),
                      copy_time, job_result, env.now - t0)


def run_scidp(world: ExperimentWorld, analysis: str = "none",
              granularity=None, slots_per_node: int = 8,
              max_inflight=None, prefetch: bool = False,
              readahead_cache_bytes: int = 0):
    """Direct processing of PFS netCDF data: no conversion, no copy,
    variable-subset reads, whole-block requests. DES process.

    ``max_inflight`` bounds the readers' request window (1 = serial);
    ``prefetch``/``readahead_cache_bytes`` enable the map runtime's
    double-buffered block prefetch and node read-ahead cache.
    """
    env = world.env
    input_format = world.scidp.input_format(
        variables=[world.variable], granularity=granularity,
        max_inflight=max_inflight)
    job = _job(world, "scidp",
               binary_level_mapper(world.variable, analysis),
               input_format, [f"pfs://{world.nc_dir}"], analysis,
               slots_per_node=slots_per_node)
    job.prefetch = prefetch
    job.readahead_cache_bytes = readahead_cache_bytes
    t0 = env.now
    job_result = yield env.process(_run_job(world, job))
    return _summarize(world, "scidp", _workload_name(analysis),
                      0.0, job_result, env.now - t0)


def _workload_name(analysis: str) -> str:
    return "img-only" if analysis == "none" else f"anlys:{analysis}"


SOLUTIONS = {
    "naive": run_naive,
    "vanilla": run_vanilla,
    "porthadoop": run_porthadoop,
    "scihadoop": run_scihadoop,
    "scidp": run_scidp,
}


def run_solution(world: ExperimentWorld, solution: str,
                 analysis: str = "none", **kwargs) -> SolutionResult:
    """Convenience wrapper: run one solution to completion.

    Extra keyword arguments go to the solution driver (e.g. SciDP's
    ``granularity`` for the read-granularity ablation).
    """
    if solution not in SOLUTIONS:
        raise ValueError(
            f"unknown solution {solution!r}; have {sorted(SOLUTIONS)}")
    proc = world.env.process(SOLUTIONS[solution](world, analysis, **kwargs))
    world.env.run()
    return proc.value
