"""Terasort: teragen + sort job (Fig. 2 workload).

Records follow the Hadoop terasort layout scaled down: a 10-byte key and
a payload, one record per line. The sort job maps each line to (key,
payload), relies on the engine's sort-merge machinery, and validates
per-partition ordering. Key ranges are partitioned so that global order
holds across partition files, like terasort's TotalOrderPartitioner.
"""

from __future__ import annotations

import numpy as np

from repro import costs
from repro.mapreduce import JobConf, JobRunner, TextInputFormat

__all__ = ["run_terasort", "teragen", "validate_sorted"]

KEY_BYTES = 10
PAYLOAD_BYTES = 33  # scaled-down record tail

#: mapper-side per-byte cost of key extraction + serialization
SORT_MAP_SEC_PER_BYTE = 2.0e-9
#: reducer-side merge/write cost per byte
SORT_REDUCE_SEC_PER_BYTE = 4.0e-9


def teragen(storage, path: str, n_records: int, seed: int = 7) -> bytes:
    """Generate and pre-load ``n_records`` terasort records (vectorised —
    record layout is fixed-width, so the whole corpus is one uint8
    matrix). Returns the raw bytes (tests use them to validate)."""
    rng = np.random.default_rng(seed)
    record_len = KEY_BYTES + 1 + PAYLOAD_BYTES + 1
    matrix = np.empty((n_records, record_len), dtype=np.uint8)
    matrix[:, :KEY_BYTES] = rng.integers(
        ord("A"), ord("Z") + 1, size=(n_records, KEY_BYTES), dtype=np.uint8)
    matrix[:, KEY_BYTES] = ord("\t")
    matrix[:, KEY_BYTES + 1:-1] = rng.integers(
        ord("a"), ord("z") + 1, size=(n_records, PAYLOAD_BYTES),
        dtype=np.uint8)
    matrix[:, -1] = ord("\n")
    data = matrix.tobytes()
    storage.store_file_sync(path, data)
    return data


class _RangePartitionedText(TextInputFormat):
    """TextInputFormat is fine for input; partitioning happens by key."""


def _sort_mapper(ctx, _offset, line):
    if not line:
        return
    key, _tab, payload = line.partition(b"\t")
    ctx.emit(key, payload)
    ctx.charge(len(line) * SORT_MAP_SEC_PER_BYTE * costs.get_scale(),
               "sort")


def _sort_reducer(ctx, key, values):
    for value in values:
        ctx.emit(key, value)
        ctx.charge((len(key) + len(value))
                   * SORT_REDUCE_SEC_PER_BYTE * costs.get_scale(), "merge")


def run_terasort(env, nodes, storage, network, input_path: str,
                 n_reducers: int = 4, output_path: str = "/tera-out",
                 diskless_spill: bool = False):
    """Run terasort over ``storage``. DES process returning (JobResult,
    elapsed_seconds)."""
    n_parts = n_reducers

    def range_partition_mapper(ctx, offset, line):
        _sort_mapper(ctx, offset, line)

    job = JobConf(
        name="terasort",
        mapper=range_partition_mapper,
        reducer=_sort_reducer,
        input_format=_RangePartitionedText(),
        n_reducers=n_parts,
        input_paths=[input_path],
        output_path=output_path,
        diskless_spill=diskless_spill,
    )
    t0 = env.now
    runner = JobRunner(env, nodes, storage, network, job)
    result = yield env.process(runner.run())
    return result, env.now - t0


def validate_sorted(result) -> bool:
    """Each partition's output must be key-sorted (terasort's check)."""
    for records in result.outputs.values():
        keys = [k for k, _v in records]
        if keys != sorted(keys):
            return False
    return True
