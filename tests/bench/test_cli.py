"""Tests for the `python -m repro.bench` CLI."""

import pytest

from repro import costs
from repro.bench.__main__ import EXPERIMENTS, main


@pytest.fixture(autouse=True)
def _reset():
    yield
    costs.reset_scale()


def test_no_args_lists_experiments(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "all" in out


def test_unknown_experiment_errors(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_quick_run_prints_table(capsys):
    assert main(["table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "== table1 ==" in out
    assert "scidp" in out
    assert "wall]" in out


def test_quick_fig9(capsys):
    assert main(["fig9", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "no analysis" in out


def test_quick_trace_export(tmp_path, capsys):
    from repro.obs.report import validate_trace
    from repro.obs.trace import load_trace

    path = tmp_path / "fig9.json"
    assert main(["fig9", "--quick", "--trace", str(path)]) == 0
    assert f"wrote {path}" in capsys.readouterr().out
    assert validate_trace(str(path)) == []
    doc = load_trace(str(path))
    assert any(e.get("cat") == "task.map" for e in doc["traceEvents"])
    assert doc["deviceMetrics"]


def test_trace_without_traceable_experiment(tmp_path, capsys):
    path = tmp_path / "t1.json"
    assert main(["table1", "--quick", "--trace", str(path)]) == 0
    assert "nothing written" in capsys.readouterr().out
    assert not path.exists()


def test_every_experiment_has_quick_kwargs():
    for name, (_runner, _full, quick) in EXPERIMENTS.items():
        assert isinstance(quick, dict), name


def test_json_output_is_machine_readable(capsys):
    import json

    assert main(["table1", "--quick", "--json"]) == 0
    out = capsys.readouterr().out
    doc = json.loads(out)          # the whole stdout is one JSON document
    assert doc["quick"] is True
    (experiment,) = doc["experiments"]
    assert experiment["name"] == "table1"
    assert experiment["columns"]
    assert experiment["rows"]
    assert experiment["wall_seconds"] >= 0
