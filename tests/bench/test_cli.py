"""Tests for the `python -m repro.bench` CLI."""

import pytest

from repro import costs
from repro.bench.__main__ import EXPERIMENTS, main


@pytest.fixture(autouse=True)
def _reset():
    yield
    costs.reset_scale()


def test_no_args_lists_experiments(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "all" in out


def test_unknown_experiment_errors(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_quick_run_prints_table(capsys):
    assert main(["table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "== table1 ==" in out
    assert "scidp" in out
    assert "wall]" in out


def test_quick_fig9(capsys):
    assert main(["fig9", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "no analysis" in out


def test_every_experiment_has_quick_kwargs():
    for name, (_runner, _full, quick) in EXPERIMENTS.items():
        assert isinstance(quick, dict), name
