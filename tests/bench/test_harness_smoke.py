"""Smoke tests of the experiment harness at miniature sizes.

The benchmark suite runs the real sizes and asserts the paper's shape;
these tests only prove the runners work end-to-end and return
well-formed rows, so `pytest tests/` stays fast.
"""

import pytest

from repro import costs
from repro.bench import harness


@pytest.fixture(autouse=True)
def _reset():
    costs.reset_scale()
    yield
    costs.reset_scale()


def test_table1_shape():
    columns, rows, note = harness.table1_rows()
    assert len(columns) == 4
    assert len(rows) == 5
    assert note


def test_fig2_miniature():
    columns, rows, note = harness.fig2_rows(
        n_records=2000, n_lines=2000, dfsio_files=2,
        dfsio_bytes=128 * 1024)
    names = [r[0] for r in rows]
    assert names == ["terasort", "grep", "dfsio-write", "dfsio-read",
                     "geo-mean"]
    for row in rows[:-1]:
        assert row[1] > 0 and row[2] > 0


def test_fig5_miniature():
    columns, rows, note = harness.fig5_table3_rows(
        sizes=(2,), solutions=("scidp", "scihadoop"))
    totals = {r[0]: r[1] for r in rows if not r[0].startswith(
        ("---", "scidp vs"))}
    assert totals["scidp"] < totals["scihadoop"]


def test_fig6_miniature():
    columns, rows, note = harness.fig6_rows(readers=(1, 2))
    assert len(rows) == 2
    for row in rows:
        assert all(v > 0 for v in row[1:])


def test_fig7_miniature():
    columns, rows, note = harness.fig7_rows(n_timesteps=2)
    assert [r[0] for r in rows] == [
        "naive", "vanilla", "porthadoop", "scidp"]


def test_fig8_miniature():
    columns, rows, note = harness.fig8_rows(
        node_counts=(2, 4), n_timesteps=4)
    assert rows[1][2] < rows[0][2]  # more nodes, less time


def test_fig9_miniature():
    columns, rows, note = harness.fig9_rows(
        sizes=(2,), analyses=("none", "top1pct"))
    (size, base, top, shuffle_mb), = rows
    assert top > base
    assert shuffle_mb > 0


def test_shuffle_overlap_miniature():
    columns, rows, note = harness.shuffle_overlap_rows(n_timesteps=2)
    labels = [r[0] for r in rows]
    assert labels[0] == "legacy barrier"
    legacy, overlap, combined, bounded = rows
    assert overlap[1] < legacy[1]
    assert combined[3] < legacy[3]
    assert bounded[5] > 0


def test_ablation_runners_miniature():
    cols, rows, _ = harness.abl_chunk_alignment_rows(
        n_timesteps=2, split_factor=2)
    assert rows[1][3] == pytest.approx(2.0)
    cols, rows, _ = harness.abl_read_granularity_rows(n_timesteps=2)
    assert rows[1][1] > rows[0][1]
    cols, rows, _ = harness.abl_subsetting_rows(n_timesteps=1)
    assert rows[1][2] == 23 * rows[0][2]
