"""Perf smoke: the figure benches must not drift.

Golden numbers were captured from the pre-pipelining data path. With
the pipelining knobs at their defaults the fig benches take the exact
old code paths (single-request blocks, no prefetch, no cache, AllOf
fan-out), so these are equality checks up to float tolerance — any
drift means the rework changed simulated physics, which is a bug.

The datapath assertions are the flip side: with the knobs *on*, the
pipeline must actually be faster than the serial path.
"""

import pytest

from repro import costs
from repro.bench.harness import (
    datapath_rows,
    fig2_rows,
    fig5_table3_rows,
    shuffle_overlap_rows,
    write_path_rows,
)

#: fig5 totals at sizes=(3,), captured before the pipelined data path
GOLDEN_FIG5 = {
    "naive": 83.08206649538458,
    "vanilla": 5.496688062134538,
    "porthadoop": 3.873715299853103,
    "scihadoop": 3.7875080786851356,
    "scidp": 0.4557778334075806,
}
GOLDEN_FIG5_SPEEDUPS = {
    "scidp vs naive": 182.28632549816922,
    "scidp vs vanilla": 12.060016216758637,
    "scidp vs porthadoop": 8.499130532285063,
    "scidp vs scihadoop": 8.309987456757568,
}

#: fig2 quick (n_records=2000, n_lines=2000, dfsio_files=2,
#: dfsio_bytes=256 KiB): (hdfs s, connector s, ratio)
GOLDEN_FIG2 = {
    "terasort": (0.25000851905816, 0.4820987875158419,
                 1.9283294398607682),
    "grep": (0.1658780279171006, 0.23560200004893594,
             1.4203327770853453),
    "dfsio-write": (0.3428938113958331, 0.9702444723246506,
                    2.829577087947529),
    "dfsio-read": (0.34229381139583426, 0.9350183105468615,
                   2.73162493570645),
}
GOLDEN_FIG2_GEOMEAN = 2.145005869724353

#: shuffle ablation, quick size (n_timesteps=4). The legacy-barrier
#: timing is the bit-exactness pin for the default knob path; the
#: volumes/counter strings are exact for every configuration.
GOLDEN_SHUFFLE_LEGACY_TOTAL = 0.8014997687187184
GOLDEN_SHUFFLE_MB = 0.421875
GOLDEN_SHUFFLE_COMBINED_MB = 0.052734375
GOLDEN_SHUFFLE_COMBINE = "9216/1152"

#: write bench, quick size (n_files=2, blocks_per_file=2): {label:
#: seconds}. The two "legacy" rows are the bit-exactness pins for the
#: default-knob write path (they drive the frozen store-and-forward /
#: unbounded-stripe-push event sequences); the rest pin the pipelined
#: disciplines' determinism.
GOLDEN_WRITE = {
    ("legacy store-and-forward", "hdfs://"): 7.034744019759548,
    ("packet pipeline", "hdfs://"): 2.2343153050928817,
    ("packet + parallel blocks", "hdfs://"): 2.210058764648437,
    ("packet + parallel + write-behind", "hdfs://"): 2.2014587646484376,
    ("legacy stripe pushes", "pfs://"): 7.327828367708432,
    ("windowed stripe pushes", "pfs://"): 7.327828367708432,
    ("windowed + write-behind", "pfs://"): 3.814728367708541,
}

REL = 1e-9


@pytest.fixture(autouse=True)
def _reset_scale():
    yield
    costs.reset_scale()


def test_fig5_reproduces_golden_totals():
    _columns, rows, _note = fig5_table3_rows(sizes=(3,))
    got = {row[0]: row[1] for row in rows}
    for solution, golden in GOLDEN_FIG5.items():
        assert got[solution] == pytest.approx(golden, rel=REL), solution
    for label, golden in GOLDEN_FIG5_SPEEDUPS.items():
        assert got[label] == pytest.approx(golden, rel=REL), label


def test_fig2_reproduces_golden_quick_numbers():
    _columns, rows, _note = fig2_rows(
        n_records=2000, n_lines=2000, dfsio_files=2,
        dfsio_bytes=256 * 1024)
    got = {row[0]: row for row in rows}
    for workload, (hdfs_s, conn_s, ratio) in GOLDEN_FIG2.items():
        row = got[workload]
        assert row[1] == pytest.approx(hdfs_s, rel=REL), workload
        assert row[2] == pytest.approx(conn_s, rel=REL), workload
        assert row[3] == pytest.approx(ratio, rel=REL), workload
    assert got["geo-mean"][3] == pytest.approx(GOLDEN_FIG2_GEOMEAN,
                                               rel=REL)


def test_shuffle_overlap_goldens_and_ordering():
    _columns, rows, _note = shuffle_overlap_rows(n_timesteps=4)
    legacy, overlap, combined, bounded = rows
    # default knobs take the exact legacy code path — equality pin
    assert legacy[1] == pytest.approx(GOLDEN_SHUFFLE_LEGACY_TOTAL,
                                      rel=REL)
    assert legacy[3] == overlap[3] == GOLDEN_SHUFFLE_MB
    assert combined[3] == bounded[3] == GOLDEN_SHUFFLE_COMBINED_MB
    assert combined[4] == bounded[4] == GOLDEN_SHUFFLE_COMBINE
    # the perf trajectory itself: each mechanism must keep paying off
    assert overlap[1] < legacy[1]
    assert combined[1] < overlap[1]
    assert bounded[5] > 0


def test_write_path_goldens_and_ordering():
    _columns, rows, _note = write_path_rows(n_files=2, blocks_per_file=2)
    got = {(row[0], row[1]): row for row in rows}
    for key, golden in GOLDEN_WRITE.items():
        assert got[key][2] == pytest.approx(golden, rel=REL), key
    # the perf trajectory: the packet pipeline is the big win at
    # replication 3, parallel blocks and write-behind keep paying off
    assert got[("packet pipeline", "hdfs://")][3] >= 1.3  # the CI gate
    assert got[("packet + parallel blocks", "hdfs://")][2] \
        <= got[("packet pipeline", "hdfs://")][2]
    assert got[("packet + parallel + write-behind", "hdfs://")][2] \
        <= got[("packet + parallel blocks", "hdfs://")][2]
    assert got[("windowed + write-behind", "pfs://")][2] \
        < got[("legacy stripe pushes", "pfs://")][2]


def test_pipelined_datapath_beats_serial():
    _columns, rows, _note = datapath_rows(n_timesteps=8,
                                          slots_per_node=2)
    serial, prefetched, chopped, windowed = rows
    assert prefetched[2] < serial[2]   # prefetch shortens the map phase
    assert windowed[2] < chopped[2]    # window beats serial chopped reads
    assert windowed[1] < chopped[1]
