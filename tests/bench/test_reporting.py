"""Tests for the table formatter."""

from repro.bench.reporting import format_table


def test_format_table_alignment_and_content():
    text = format_table(
        "demo", ["name", "value"],
        [("alpha", 1.0), ("b", 1234.5), ("c", 0.1234)],
        note="hello")
    lines = text.splitlines()
    assert lines[0] == "== demo =="
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert "alpha" in lines[3]
    assert "1,234" in text       # thousands separator for large floats
    assert "0.123" in text       # 3 decimals for small floats
    assert lines[-1] == "note: hello"
    # Columns align: every data row has the separator at the same place.
    sep_positions = {line.index("|") for line in lines[1:-1] if "|" in line}
    assert len(sep_positions) == 1


def test_format_table_empty_rows():
    text = format_table("empty", ["a", "b"], [])
    assert "== empty ==" in text
    assert "a" in text and "b" in text


def test_format_table_mixed_types():
    text = format_table("t", ["x"], [(0,)])
    assert "0" in text
    text2 = format_table("t", ["x"], [(0.0,)])
    assert "0" in text2
    text3 = format_table("t", ["x"], [(12.3456,)])
    assert "12.3" in text3
