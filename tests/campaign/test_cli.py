"""The ``python -m repro.campaign`` surface and the campaign registry."""

import json

import pytest

from repro.campaign.__main__ import main
from repro.campaign.registry import CAMPAIGNS, get_campaign


class TestRegistry:
    def test_every_campaign_expands(self):
        for definition in CAMPAIGNS.values():
            points = definition.points(quick=True)
            assert points, definition.name
            full = definition.points()
            assert full, definition.name

    def test_smoke_space_is_eight_seeds(self):
        points = get_campaign("smoke").points(quick=True)
        assert len(points) == 8
        assert sorted(p["seed"] for p in points) == list(range(8))

    def test_unknown_campaign_lists_names(self):
        with pytest.raises(KeyError, match="smoke"):
            get_campaign("nope")


class TestCLI:
    def test_bare_invocation_lists_campaigns(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in CAMPAIGNS:
            assert name in out

    def test_run_status_aggregate_clean(self, tmp_path, capsys):
        ws = str(tmp_path / "ws")
        assert main(["run", "smoke", "--quick",
                     "--workspace", ws]) == 0
        out = capsys.readouterr().out
        assert "8 executed (0 failed)" in out

        # warm re-run: everything cached
        assert main(["run", "smoke", "--quick", "--quiet",
                     "--workspace", ws]) == 0
        out = capsys.readouterr().out
        assert "0 executed (0 failed), 8 cache hits" in out

        assert main(["status", "smoke", "--quick",
                     "--workspace", ws]) == 0
        out = capsys.readouterr().out
        assert "8 complete" in out

        assert main(["aggregate", "smoke", "--quick", "--json",
                     "--workspace", ws]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment"] == "campaign_smoke"
        assert doc["points"] == 8

        assert main(["aggregate", "smoke", "--quick",
                     "--workspace", ws]) == 0
        out = capsys.readouterr().out
        assert "order signature" in out

        assert main(["clean", "smoke", "--quick",
                     "--workspace", ws]) == 0
        out = capsys.readouterr().out
        assert "removed 8 point(s)" in out

    def test_aggregate_before_run_fails_cleanly(self, tmp_path, capsys):
        assert main(["aggregate", "smoke", "--quick", "--workspace",
                     str(tmp_path / "empty")]) == 1
        err = capsys.readouterr().err
        assert "not complete" in err

    def test_unknown_campaign_exits_one(self, tmp_path, capsys):
        assert main(["run", "nope", "--workspace",
                     str(tmp_path / "ws")]) == 1
        err = capsys.readouterr().err
        assert "unknown campaign" in err
