"""Incremental re-run: skip-if-computed, fingerprint invalidation and
error retry."""

import json

from repro.campaign import ParameterSpace, Workspace, run_points

WORKERS = "tests.campaign.workers"
FP = "f" * 20
NEW_FP = "0" * 20


def _points(n=8):
    return ParameterSpace().grid(seed=list(range(n))).points()


def test_second_run_executes_zero_points(tmp_path):
    ws = Workspace(tmp_path / "ws")
    first = run_points(_points(), f"{WORKERS}:ok_point", ws,
                       fingerprint=FP)
    assert len(first.executed) == 8

    second = run_points(_points(), f"{WORKERS}:ok_point", ws,
                        fingerprint=FP)
    assert len(second.executed) == 0
    assert second.cache_hits == 8
    assert set(second.skipped) == set(first.executed)


def test_fingerprint_change_reruns_everything(tmp_path):
    ws = Workspace(tmp_path / "ws")
    run_points(_points(), f"{WORKERS}:ok_point", ws, fingerprint=FP)
    report = run_points(_points(), f"{WORKERS}:ok_point", ws,
                        fingerprint=NEW_FP)
    assert len(report.executed) == 8
    assert report.cache_hits == 0


def test_tampered_fingerprints_rerun_exactly_those_points(tmp_path):
    ws = Workspace(tmp_path / "ws")
    first = run_points(_points(), f"{WORKERS}:ok_point", ws,
                       fingerprint=FP)
    stale = sorted(first.executed)[:3]
    for pid in stale:
        path = ws.root / pid / "provenance.json"
        provenance = json.loads(path.read_text())
        provenance["fingerprint"] = "tampered"
        path.write_text(json.dumps(provenance))

    second = run_points(_points(), f"{WORKERS}:ok_point", ws,
                        fingerprint=FP)
    assert sorted(second.executed) == stale
    assert second.cache_hits == 5
    # ...and afterwards the whole sweep is warm again
    third = run_points(_points(), f"{WORKERS}:ok_point", ws,
                       fingerprint=FP)
    assert len(third.executed) == 0


def test_errored_point_records_error_and_is_retried(tmp_path):
    ws = Workspace(tmp_path / "ws")
    flag = tmp_path / "fail.flag"
    flag.write_text("fail")
    points = (ParameterSpace(base={"flag_path": str(flag)})
              .grid(seed=[0, 1]).points())

    first = run_points(points, f"{WORKERS}:flag_file_point", ws,
                       fingerprint=FP)
    assert len(first.failed) == 2
    for pid in first.failed:
        assert (ws.root / pid / "error.json").exists()
        assert not (ws.root / pid / "result.json").exists()

    # the cause goes away -> the next run retries exactly the errored
    # points and they complete
    flag.unlink()
    second = run_points(points, f"{WORKERS}:flag_file_point", ws,
                        fingerprint=FP)
    assert sorted(second.executed) == sorted(first.failed)
    assert not second.failed
    for record in ws.records(FP):
        assert record.status == "complete"
        assert record.result["value"] == "recovered"
        assert not (ws.root / record.point_id / "error.json").exists()


def test_schema_bump_invalidates_completed_points(tmp_path):
    ws = Workspace(tmp_path / "ws")
    first = run_points(_points(2), f"{WORKERS}:ok_point", ws,
                       fingerprint=FP)
    pid = first.executed[0]
    path = ws.root / pid / "provenance.json"
    provenance = json.loads(path.read_text())
    provenance["schema"] = -1
    path.write_text(json.dumps(provenance))

    second = run_points(_points(2), f"{WORKERS}:ok_point", ws,
                        fingerprint=FP)
    assert second.executed == [pid]
