"""The campaign driver: spawn-safety, failure isolation, timeouts,
pool crashes, and serial-vs-parallel equivalence."""

import pytest

from repro.campaign import (
    CampaignError,
    ParameterSpace,
    Workspace,
    aggregate_campaign,
    get_campaign,
    run_campaign,
    run_points,
    worker_ref,
)

from tests.campaign.workers import ok_point

FP = "f" * 20

WORKERS = "tests.campaign.workers"


def _seed_points(n, **extra):
    return (ParameterSpace(base=extra)
            .grid(seed=list(range(n))).points())


class TestWorkerRef:
    def test_string_ref_roundtrips(self):
        assert worker_ref(f"{WORKERS}:ok_point") == \
            f"{WORKERS}:ok_point"

    def test_callable_resolves_to_its_ref(self):
        assert worker_ref(ok_point) == f"{WORKERS}:ok_point"

    def test_lambda_rejected(self):
        with pytest.raises(CampaignError, match="top-level"):
            worker_ref(lambda sp: sp)

    def test_nested_function_rejected(self):
        def nested(sp):
            return sp
        with pytest.raises(CampaignError, match="top-level"):
            worker_ref(nested)

    def test_bound_method_rejected(self):
        class Thing:
            def work(self, sp):
                return sp
        with pytest.raises(CampaignError, match="top-level"):
            worker_ref(Thing().work)

    def test_malformed_string_rejected(self):
        with pytest.raises(CampaignError, match="module:function"):
            worker_ref("no_colon_here")

    def test_unresolvable_ref_rejected(self):
        with pytest.raises(CampaignError, match="cannot resolve"):
            worker_ref(f"{WORKERS}:no_such_function")

    def test_registry_workers_resolve(self):
        from repro.campaign.registry import CAMPAIGNS

        for definition in CAMPAIGNS.values():
            assert worker_ref(definition.worker) == definition.worker


class TestStatepointGuard:
    def test_environment_cannot_cross_the_boundary(self, tmp_path):
        from repro.sim.engine import Environment

        ws = Workspace(tmp_path / "ws")
        with pytest.raises(CampaignError, match="process boundary"):
            run_points([{"seed": 0, "env": Environment()}],
                       f"{WORKERS}:ok_point", ws, fingerprint=FP)

    def test_nan_parameter_rejected(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        with pytest.raises(CampaignError, match="NaN"):
            run_points([{"seed": float("nan")}],
                       f"{WORKERS}:ok_point", ws, fingerprint=FP)


class TestSerialRuns:
    def test_sweep_records_results(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        report = run_points(_seed_points(4), f"{WORKERS}:ok_point", ws,
                            fingerprint=FP)
        assert len(report.executed) == 4
        assert not report.failed and not report.skipped
        for record in ws.records(FP):
            assert record.status == "complete"
            assert record.result["value"] == record.statepoint["seed"] * 2
            assert record.provenance["fingerprint"] == FP

    def test_failure_is_isolated(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        points = _seed_points(5, fail_seeds=[1, 3])
        report = run_points(points, f"{WORKERS}:failing_point", ws,
                            fingerprint=FP)
        assert len(report.executed) == 5
        assert len(report.failed) == 2
        statuses = {r.statepoint["seed"]: r.status
                    for r in ws.records(FP)}
        assert statuses == {0: "complete", 1: "error", 2: "complete",
                            3: "error", 4: "complete"}
        errored = next(r for r in ws.records(FP)
                       if r.statepoint["seed"] == 1)
        assert errored.error["type"] == "RuntimeError"
        assert "asked to fail" in errored.error["message"]
        assert "RuntimeError" in errored.error["traceback"]

    def test_timeout_becomes_a_recorded_error(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        report = run_points(
            [{"seed": 0, "sleep_s": 30.0}], f"{WORKERS}:slow_point",
            ws, timeout=0.2, fingerprint=FP)
        assert len(report.failed) == 1
        record = next(iter(ws.records(FP)))
        assert record.status == "error"
        assert record.error["timeout"] is True
        assert "timeout" in record.error["message"]

    def test_unserializable_result_becomes_an_error(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        report = run_points(
            [{"seed": 0}], f"{WORKERS}:unserializable_point", ws,
            fingerprint=FP)
        assert report.failed
        record = next(iter(ws.records(FP)))
        assert record.status == "error"
        assert "JSON-serializable" in record.error["message"]

    def test_progress_stream(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        events = []
        run_points(_seed_points(2), f"{WORKERS}:ok_point", ws,
                   fingerprint=FP, progress=events.append)
        kinds = [event["event"] for event in events]
        assert kinds == ["point", "point", "done"]
        assert events[0]["total"] == 2
        assert events[-1]["executed"] == 2

    def test_duplicate_points_run_once(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        report = run_points(
            [{"seed": 1}, {"seed": 1.0}], f"{WORKERS}:ok_point", ws,
            fingerprint=FP)
        assert report.total == 1
        assert len(report.executed) == 1


class TestPoolRuns:
    def test_parallel_failure_isolation(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        points = _seed_points(4, fail_seeds=[2])
        report = run_points(points, f"{WORKERS}:failing_point", ws,
                            workers=2, fingerprint=FP)
        assert len(report.executed) == 4
        assert len(report.failed) == 1
        statuses = sorted(r.status for r in ws.records(FP))
        assert statuses == ["complete", "complete", "complete", "error"]

    def test_hard_child_death_does_not_abort_the_sweep(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        points = [{"seed": 0, "crash": False},
                  {"seed": 1, "crash": True},
                  {"seed": 2, "crash": False}]
        report = run_points(points, f"{WORKERS}:crash_point", ws,
                            workers=1, fingerprint=FP)
        assert len(report.executed) == 3
        assert len(report.failed) == 1
        by_seed = {r.statepoint["seed"]: r for r in ws.records(FP)}
        assert by_seed[0].status == "complete"
        assert by_seed[1].status == "error"
        assert "died" in by_seed[1].error["message"]
        # the rebuilt pool finished the remainder of the sweep
        assert by_seed[2].status == "complete"
        assert by_seed[2].result["value"] == "survived"


class TestEquivalence:
    def test_parallel_sweep_matches_serial(self, tmp_path):
        """workers=4 and workers=0 aggregate byte-identically on the
        seeded 8-point smoke sweep."""
        definition = get_campaign("smoke")
        serial_ws = Workspace(tmp_path / "serial")
        parallel_ws = Workspace(tmp_path / "parallel")

        serial = run_campaign(definition, serial_ws, workers=0,
                              quick=True)
        parallel = run_campaign(definition, parallel_ws, workers=4,
                                quick=True)
        assert not serial.failed and not parallel.failed
        assert len(serial.executed) == len(parallel.executed) == 8

        serial_doc = aggregate_campaign(definition, serial_ws,
                                        quick=True)
        parallel_doc = aggregate_campaign(definition, parallel_ws,
                                          quick=True)
        assert serial_doc == parallel_doc
