"""State-point canonicalisation, hashing and the parameter space."""

import math

import pytest

from repro.campaign import ParameterSpace, canonicalize, statepoint_id


class TestCanonicalize:
    def test_key_order_is_irrelevant(self):
        a = statepoint_id({"alpha": 1, "beta": 2, "gamma": 3})
        b = statepoint_id({"gamma": 3, "alpha": 1, "beta": 2})
        assert a == b

    def test_integral_float_collapses_to_int(self):
        assert canonicalize(1.0) == 1
        assert isinstance(canonicalize(1.0), int)
        assert statepoint_id({"n": 1}) == statepoint_id({"n": 1.0})
        assert statepoint_id({"n": -4.0}) == statepoint_id({"n": -4})

    def test_non_integral_float_survives(self):
        assert canonicalize(1.5) == 1.5
        assert statepoint_id({"x": 1.5}) != statepoint_id({"x": 1})

    def test_huge_integral_float_stays_float(self):
        big = 2.0**60
        assert isinstance(canonicalize(big), float)

    def test_tuple_and_list_hash_identically(self):
        a = statepoint_id({"shape": (8, 48, 48)})
        b = statepoint_id({"shape": [8, 48, 48]})
        assert a == b
        assert canonicalize((1, 2)) == [1, 2]

    def test_nested_structures(self):
        a = statepoint_id({"cfg": {"b": (1.0, 2), "a": [3]}})
        b = statepoint_id({"cfg": {"a": (3,), "b": [1, 2.0]}})
        assert a == b

    def test_bool_is_not_int(self):
        assert canonicalize(True) is True
        assert statepoint_id({"flag": True}) != statepoint_id({"flag": 1})

    def test_nan_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="NaN"):
            canonicalize(float("nan"))
        with pytest.raises(ValueError, match="NaN"):
            statepoint_id({"x": math.nan})

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="infinite"):
            statepoint_id({"x": math.inf})

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            canonicalize({1: "one"})

    def test_numpy_scalars_unwrap(self):
        np = pytest.importorskip("numpy")
        assert canonicalize(np.int64(3)) == 3
        assert statepoint_id({"n": np.int64(3)}) == \
            statepoint_id({"n": 3})
        assert statepoint_id({"x": np.float64(1.0)}) == \
            statepoint_id({"x": 1})

    def test_simulation_objects_rejected_with_hint(self):
        from repro.sim.engine import Environment

        with pytest.raises(TypeError, match="process boundary"):
            canonicalize({"env": Environment()})

    def test_arbitrary_objects_rejected(self):
        with pytest.raises(TypeError, match="unsupported"):
            canonicalize({"s": {1, 2}})

    def test_statepoint_must_be_dict(self):
        with pytest.raises(TypeError, match="dict of parameters"):
            statepoint_id([("a", 1)])

    def test_id_is_stable_and_short(self):
        pid = statepoint_id({"workload": "smoke", "seed": 0})
        assert pid == statepoint_id({"seed": 0, "workload": "smoke"})
        assert len(pid) == 20
        assert all(c in "0123456789abcdef" for c in pid)


class TestParameterSpace:
    def test_grid_expands_cartesian(self):
        space = ParameterSpace(base={"w": "x"}).grid(
            a=[1, 2], b=["p", "q"])
        points = space.points()
        assert len(points) == 4
        assert points[0] == {"w": "x", "a": 1, "b": "p"}
        assert points[-1] == {"w": "x", "a": 2, "b": "q"}

    def test_successive_grids_multiply(self):
        space = ParameterSpace().grid(a=[1, 2]).grid(b=[1, 2, 3])
        assert len(space) == 6

    def test_zip_advances_in_lockstep(self):
        space = ParameterSpace().zip(seed=[0, 1, 2],
                                     replicate=["r0", "r1", "r2"])
        points = space.points()
        assert len(points) == 3
        assert points[1] == {"seed": 1, "replicate": "r1"}

    def test_zip_rejects_unequal_lengths(self):
        with pytest.raises(ValueError, match="equal lengths"):
            ParameterSpace().zip(a=[1, 2], b=[1])

    def test_when_overrides_matching_points(self):
        space = (ParameterSpace(base={"timeout": 10})
                 .grid(size=["small", "large"])
                 .when(lambda p: p["size"] == "large", timeout=100))
        by_size = {p["size"]: p for p in space}
        assert by_size["small"]["timeout"] == 10
        assert by_size["large"]["timeout"] == 100

    def test_where_filters_points(self):
        space = (ParameterSpace().grid(a=[1, 2, 3, 4])
                 .where(lambda p: p["a"] % 2 == 0))
        assert [p["a"] for p in space] == [2, 4]

    def test_duplicates_after_canonicalisation_dropped(self):
        space = ParameterSpace().grid(n=[1, 1.0, 2])
        assert len(space) == 2

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ParameterSpace().grid(a=[])

    def test_expansion_is_deterministic(self):
        def build():
            return (ParameterSpace(base={"w": "s"})
                    .grid(seed=list(range(5))).points())
        assert build() == build()
