"""Workspace layout, provenance-based status, and code fingerprints."""

import json

import pytest

from repro.campaign import (
    SCHEMA_VERSION,
    Workspace,
    code_fingerprint,
    statepoint_id,
)

FP = "f" * 20
OTHER_FP = "0" * 20


def _provenance(fingerprint=FP, schema=SCHEMA_VERSION):
    return {"schema": schema, "fingerprint": fingerprint,
            "campaign": "test", "worker": "tests:none", "seed": 0,
            "wall_seconds": 0.1, "finished_at": 0.0}


class TestLayout:
    def test_ensure_point_writes_canonical_statepoint(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        pid = ws.ensure_point({"b": 2.0, "a": (1,)})
        sp = json.loads(
            (ws.root / pid / "statepoint.json").read_text())
        assert sp == {"a": [1], "b": 2}

    def test_equivalent_spellings_share_a_directory(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        a = ws.ensure_point({"n": 1, "shape": (4, 4)})
        b = ws.ensure_point({"shape": [4, 4], "n": 1.0})
        assert a == b
        assert ws.point_ids() == [a]

    def test_point_dir_accepts_dict_or_id(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        sp = {"seed": 3}
        assert ws.point_dir(sp) == ws.point_dir(statepoint_id(sp))


class TestStatus:
    def test_lifecycle(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        pid = ws.ensure_point({"seed": 0})
        assert ws.status(pid, FP) == "pending"

        ws.record_result(pid, {"v": 1}, _provenance())
        assert ws.status(pid, FP) == "complete"
        record = ws.load(pid, FP)
        assert record.result == {"v": 1}
        assert record.error is None

        # a different code fingerprint makes the result stale
        assert ws.status(pid, OTHER_FP) == "stale"
        # no fingerprint requirement accepts any provenance
        assert ws.status(pid, None) == "complete"

    def test_error_supersedes_and_is_superseded(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        pid = ws.ensure_point({"seed": 0})
        ws.record_error(pid, {"type": "RuntimeError", "message": "boom"},
                        _provenance())
        assert ws.status(pid, FP) == "error"
        assert ws.load(pid, FP).error["message"] == "boom"

        # success clears the failure record
        ws.record_result(pid, {"v": 2}, _provenance())
        assert ws.status(pid, FP) == "complete"
        assert ws.load(pid, FP).error is None

        # and a later failure clears the stale success
        ws.record_error(pid, {"type": "X", "message": "again"},
                        _provenance())
        assert ws.load(pid, FP).result is None

    def test_schema_mismatch_is_stale(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        pid = ws.ensure_point({"seed": 0})
        ws.record_result(pid, {"v": 1},
                         _provenance(schema=SCHEMA_VERSION + 1))
        assert ws.status(pid, FP) == "stale"

    def test_corrupt_result_is_pending(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        pid = ws.ensure_point({"seed": 0})
        ws.record_result(pid, {"v": 1}, _provenance())
        (ws.root / pid / "result.json").write_text("{ half a doc")
        assert ws.status(pid, FP) == "pending"

    def test_missing_point_raises(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        with pytest.raises(KeyError):
            ws.load("0" * 20)
        assert ws.status("0" * 20) == "pending"

    def test_no_tmp_files_left_behind(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        pid = ws.ensure_point({"seed": 0})
        ws.record_result(pid, {"v": 1}, _provenance())
        assert not list(ws.root.rglob("*.tmp"))


class TestClean:
    def test_clean_everything(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        for seed in range(3):
            ws.ensure_point({"seed": seed})
        removed = ws.clean()
        assert len(removed) == 3
        assert ws.point_ids() == []

    def test_clean_errors_only(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        good = ws.ensure_point({"seed": 0})
        bad = ws.ensure_point({"seed": 1})
        ws.record_result(good, {"v": 1}, _provenance())
        ws.record_error(bad, {"type": "X", "message": "boom"},
                        _provenance())
        removed = ws.clean(errors_only=True)
        assert removed == [bad]
        assert ws.point_ids() == [good]


class TestCodeFingerprint:
    def test_stable_for_same_content(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "mod.py").write_text("X = 1\n")
        a = code_fingerprint(packages=(), roots=[root])
        b = code_fingerprint(packages=(), roots=[root])
        assert a == b
        assert len(a) == 20

    def test_content_change_changes_fingerprint(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "mod.py").write_text("X = 1\n")
        before = code_fingerprint(packages=(), roots=[root])
        (root / "mod.py").write_text("X = 2\n")
        assert code_fingerprint(packages=(), roots=[root]) != before

    def test_new_file_changes_fingerprint(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "mod.py").write_text("X = 1\n")
        before = code_fingerprint(packages=(), roots=[root])
        (root / "extra.py").write_text("Y = 1\n")
        assert code_fingerprint(packages=(), roots=[root]) != before

    def test_repro_package_fingerprint_is_stable(self):
        assert code_fingerprint() == code_fingerprint()
