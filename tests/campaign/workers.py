"""Worker functions for the campaign tests.

Top-level in an importable module, so ``spawn`` worker processes can
resolve them by ``"tests.campaign.workers:<name>"`` reference — the
same contract real campaign workers in :mod:`repro.bench.campaigns`
follow.
"""

import os
import time


def ok_point(statepoint):
    """Cheap deterministic worker."""
    return {"seed": statepoint["seed"], "value": statepoint["seed"] * 2}


def failing_point(statepoint):
    """Fails loudly for the seeds told to fail."""
    if statepoint["seed"] in statepoint.get("fail_seeds", []):
        raise RuntimeError(f"seed {statepoint['seed']} asked to fail")
    return {"seed": statepoint["seed"], "value": statepoint["seed"] * 2}


def flag_file_point(statepoint):
    """Fails while ``flag_path`` exists — lets a test retry a point."""
    if os.path.exists(statepoint["flag_path"]):
        raise RuntimeError("flag file present")
    return {"seed": statepoint["seed"], "value": "recovered"}


def slow_point(statepoint):
    """Sleeps past any reasonable per-point timeout."""
    time.sleep(statepoint.get("sleep_s", 60.0))
    return {"seed": statepoint["seed"]}


def crash_point(statepoint):
    """Hard child death — no exception, no cleanup, just gone."""
    if statepoint.get("crash"):
        os._exit(17)
    return {"seed": statepoint["seed"], "value": "survived"}


def unserializable_point(statepoint):
    """Returns something JSON cannot carry."""
    return {"seed": statepoint["seed"], "payload": {1, 2, 3}}
