"""Unit tests for the cluster hardware model."""

import pytest

from repro.cluster import (
    Cluster,
    DiskSpec,
    LinkSpec,
    Node,
    NodeSpec,
    chameleon_compute_spec,
    chameleon_storage_spec,
)
from repro.sim import Environment


def run_proc(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


# ------------------------------------------------------------------- specs
def test_compute_spec_matches_paper():
    spec = chameleon_compute_spec()
    assert spec.cpus == 24                       # two 12-core Xeons
    assert spec.memory == 128 * 1024 ** 3        # 128 GB
    assert len(spec.disks) == 1                  # one SATA HDD


def test_storage_spec_disk_count_configurable():
    assert len(chameleon_storage_spec(16).disks) == 16
    assert len(chameleon_storage_spec(4).disks) == 4


def test_spec_validation():
    with pytest.raises(ValueError):
        DiskSpec(bandwidth=0)
    with pytest.raises(ValueError):
        LinkSpec(bandwidth=-1)
    with pytest.raises(ValueError):
        NodeSpec(cpus=0)
    with pytest.raises(ValueError):
        NodeSpec(disks=())


# -------------------------------------------------------------------- disk
def test_disk_read_time_includes_seek():
    env = Environment()
    node = Node(env, "n0", NodeSpec(
        disks=(DiskSpec(bandwidth=100.0, seek_latency=0.5),)))
    t = []

    def proc():
        yield node.disk.read(100)
        t.append(env.now)

    env.process(proc())
    env.run()
    assert t == [pytest.approx(1.5)]  # 0.5 seek + 100B/100Bps


def test_disk_reads_and_writes_share_bandwidth():
    env = Environment()
    node = Node(env, "n0", NodeSpec(
        disks=(DiskSpec(bandwidth=100.0, seek_latency=0.0),)))
    times = {}

    def reader():
        yield node.disk.read(100)
        times["r"] = env.now

    def writer():
        yield node.disk.write(100)
        times["w"] = env.now

    env.process(reader())
    env.process(writer())
    env.run()
    assert times["r"] == pytest.approx(2.0)
    assert times["w"] == pytest.approx(2.0)


# ----------------------------------------------------------------- network
def make_pair(env, bw=100.0):
    spec = NodeSpec(nic=LinkSpec(bandwidth=bw, latency=0.0))
    return Node(env, "a", spec), Node(env, "b", spec)


def test_network_transfer_time():
    from repro.cluster import Network
    env = Environment()
    a, b = make_pair(env)
    net = Network(env)
    t = []

    def proc():
        yield net.transfer(a, b, 500)
        t.append(env.now)

    env.process(proc())
    env.run()
    assert t == [pytest.approx(5.0)]


def test_local_transfer_is_free():
    from repro.cluster import Network
    env = Environment()
    a, _ = make_pair(env)
    net = Network(env)
    t = []

    def proc():
        yield net.transfer(a, a, 10**12)
        t.append(env.now)

    env.process(proc())
    env.run()
    assert t == [0.0]
    assert net.bytes_moved == 0


def test_incast_contention_on_receiver():
    """Two senders to one receiver: rx pipe halves each flow."""
    from repro.cluster import Network
    env = Environment()
    spec = NodeSpec(nic=LinkSpec(bandwidth=100.0, latency=0.0))
    a = Node(env, "a", spec)
    b = Node(env, "b", spec)
    c = Node(env, "c", spec)
    net = Network(env)
    t = []

    def send(src):
        yield net.transfer(src, c, 500)
        t.append(env.now)

    env.process(send(a))
    env.process(send(b))
    env.run()
    assert all(x == pytest.approx(10.0) for x in t)


def test_core_switch_caps_aggregate():
    from repro.cluster import Network
    env = Environment()
    spec = NodeSpec(nic=LinkSpec(bandwidth=100.0, latency=0.0))
    nodes = [Node(env, f"n{i}", spec) for i in range(4)]
    net = Network(env, core_bandwidth=100.0)
    t = []

    def send(src, dst):
        yield net.transfer(src, dst, 500)
        t.append(env.now)

    # Two disjoint pairs: NICs alone would allow both at 100 B/s (5s each),
    # but the 100 B/s core limits the aggregate -> 10s.
    env.process(send(nodes[0], nodes[1]))
    env.process(send(nodes[2], nodes[3]))
    env.run()
    assert all(x == pytest.approx(10.0) for x in t)


def test_network_accounting():
    from repro.cluster import Network
    env = Environment()
    a, b = make_pair(env)
    net = Network(env)

    def proc():
        yield net.transfer(a, b, 123)

    env.process(proc())
    env.run()
    assert net.bytes_moved == 123


# ----------------------------------------------------------------- cluster
def test_cluster_chameleon_shape():
    env = Environment()
    c = Cluster.chameleon(env, n_compute=8, n_storage=3)
    assert len(c.compute_nodes) == 8
    assert len(c.storage_nodes) == 3
    assert len(c) == 11
    assert c["compute0"].spec.cpus == 24


def test_cluster_rejects_duplicate_names():
    env = Environment()
    c = Cluster(env)
    c.add_node("x")
    with pytest.raises(ValueError):
        c.add_node("x")


def test_cluster_rejects_unknown_role():
    env = Environment()
    c = Cluster(env)
    with pytest.raises(ValueError):
        c.add_node("x", role="gpu")


def test_node_compute_advances_time():
    env = Environment()
    node = Node(env, "n")
    t = []

    def proc():
        yield node.compute(2.5)
        t.append(env.now)

    env.process(proc())
    env.run()
    assert t == [2.5]


def test_node_cpu_slots_limit_parallelism():
    env = Environment()
    node = Node(env, "n", NodeSpec(cpus=2))
    finished = []

    def task(i):
        req = node.cpu.request()
        yield req
        yield node.compute(1.0)
        node.cpu.release(req)
        finished.append((i, env.now))

    for i in range(4):
        env.process(task(i))
    env.run()
    assert [t for _, t in finished] == [1.0, 1.0, 2.0, 2.0]
