"""Shared SciDP core fixtures: a small two-cluster world with data."""

import io

import numpy as np
import pytest

from repro.cluster import Cluster, DiskSpec, LinkSpec, NodeSpec
from repro.core import SciDP
from repro.formats import Dataset, scinc
from repro.hdfs import HDFS
from repro.pfs import PFS, StripeLayout
from repro.sim import Environment


def small_spec(disk_bw=10**7, nic_bw=10**8, n_disks=1, cpus=8):
    return NodeSpec(
        cpus=cpus,
        memory=10**9,
        disks=tuple(DiskSpec(bandwidth=disk_bw, seek_latency=0.001)
                    for _ in range(n_disks)),
        nic=LinkSpec(bandwidth=nic_bw, latency=0.0001),
    )


def make_dataset(n_vars=2, shape=(4, 8, 8), chunk=(1, 8, 8), seed=0):
    rng = np.random.default_rng(seed)
    ds = Dataset(attrs={"model": "NU-WRF"})
    for i in range(n_vars):
        ds.create_variable(
            f"var_{chr(65 + i)}", ("z", "y", "x"),
            rng.random(shape).astype(np.float32),
            chunk_shape=chunk, attrs={"units": "mm/h"})
    return ds


def scinc_bytes(ds, level=4):
    buf = io.BytesIO()
    scinc.write(buf, ds, compression_level=level)
    return buf.getvalue()


@pytest.fixture
def world():
    """4 Hadoop nodes + 1 MDS + 1 OSS(4 OSTs), SciDP wired up."""
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(4)]
    mds = cluster.add_node("mds", small_spec(), role="storage")
    oss = cluster.add_node("oss", small_spec(n_disks=4), role="storage")
    pfs = PFS(env, cluster.network, mds, [oss],
              default_layout=StripeLayout(stripe_size=4096, stripe_count=4))
    hdfs = HDFS(env, cluster.network, block_size=4096, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    scidp = SciDP(env, nodes, pfs, hdfs, cluster.network,
                  flat_block_size=4096)
    return env, cluster, nodes, pfs, hdfs, scidp


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value
