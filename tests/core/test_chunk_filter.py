"""Chunk-level mapping-time pruning and the shared header cache.

The SQL planner's zone-map pushdown drives the virtual-block layer
through two hooks added in the ISSUE-9 PR:

- ``DataMapper.map_files(chunk_filter=..., path_suffix=...)`` — chunks
  the predicate rejects get no dummy block (their bytes never leave the
  PFS), and filtered mappings live under suffixed virtual paths so they
  never alias the unfiltered mapping in the Virtual Mapping Table;
- ``FileExplorer.explore(header_cache=...)`` — repeated explorations
  reuse parsed headers and skip the probe reads/charges.

``SciDP.map_input`` wires both through (and requires a ``filter_key``
whenever a ``chunk_filter`` is passed).
"""

import pytest

from repro.core import DataMapper, FileExplorer

from tests.core.conftest import make_dataset, run, scinc_bytes


def seed_scinc(pfs, path="/data/plot_18_00_00.nc"):
    ds = make_dataset()  # 2 vars, shape (4, 8, 8), 4 z-chunks each
    pfs.store_file(path, scinc_bytes(ds))
    return ds


def explore(world_tuple, path="/data", **kwargs):
    env, _cluster, nodes, _pfs, _hdfs, scidp = world_tuple
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    return run(env, explorer.explore(path, **kwargs))


# --------------------------------------------------------- chunk_filter

def test_chunk_filter_drops_blocks(world):
    env, _cluster, nodes, pfs, hdfs, scidp = world
    seed_scinc(pfs)
    explored = explore(world)
    mapper = DataMapper(hdfs.namenode)
    keep_first = lambda var, rec: rec.index[0] == 0
    mapped = run(env, mapper.map_files(
        explored, chunk_filter=keep_first, path_suffix="@z0"))
    for record in mapped:
        for vpath in record.virtual_paths:
            blocks = hdfs.namenode.get_block_locations(vpath)
            assert len(blocks) == 1  # 3 of 4 z-chunks pruned


def test_chunk_filter_full_prune_skips_variable(world):
    env, _cluster, nodes, pfs, hdfs, scidp = world
    seed_scinc(pfs)
    explored = explore(world)
    mapper = DataMapper(hdfs.namenode)
    only_b = lambda var, rec: var.name == "var_B"
    mapped = run(env, mapper.map_files(
        explored, chunk_filter=only_b, path_suffix="@only-b"))
    paths = [p for record in mapped for p in record.virtual_paths]
    assert paths and all("var_B" in p for p in paths)


def test_filtered_mapping_does_not_alias_unfiltered(world):
    env, _cluster, nodes, pfs, hdfs, scidp = world
    seed_scinc(pfs)
    explored = explore(world)
    mapper = DataMapper(hdfs.namenode)
    full = run(env, mapper.map_files(explored))
    keep_first = lambda var, rec: rec.index[0] == 0
    filtered = run(env, mapper.map_files(
        explored, chunk_filter=keep_first, path_suffix="@z0"))
    full_paths = {p for r in full for p in r.virtual_paths}
    filt_paths = {p for r in filtered for p in r.virtual_paths}
    assert full_paths.isdisjoint(filt_paths)
    assert all(p.endswith("@z0") for p in filt_paths)
    # the unfiltered mapping still serves every chunk
    for vpath in full_paths:
        assert len(hdfs.namenode.get_block_locations(vpath)) == 4


def test_map_input_requires_filter_key(world):
    env, _cluster, _nodes, pfs, _hdfs, scidp = world
    seed_scinc(pfs)
    proc = env.process(scidp.map_input(
        "/data", chunk_filter=lambda var, rec: True))
    with pytest.raises(ValueError):
        env.run()
    assert proc.triggered


def test_map_input_filter_key_partitions_the_cache(world):
    env, _cluster, _nodes, pfs, _hdfs, scidp = world
    seed_scinc(pfs)
    full = run(env, scidp.map_input("/data"))
    pruned = run(env, scidp.map_input(
        "/data", chunk_filter=lambda var, rec: rec.index[0] == 0,
        filter_key="z0"))
    assert len(full) == len(pruned) == 2  # two variables either way
    assert all(vp.endswith("@z0") for vp, _blocks in pruned)
    assert {vp for vp, _ in full}.isdisjoint(vp for vp, _ in pruned)
    assert all(len(blocks) == 4 for _vp, blocks in full)
    assert all(len(blocks) == 1 for _vp, blocks in pruned)
    # cached: same key returns the same mapping object
    again = run(env, scidp.map_input(
        "/data", chunk_filter=lambda var, rec: rec.index[0] == 0,
        filter_key="z0"))
    assert again is pruned


# --------------------------------------------------------- header cache

def test_header_cache_skips_probe_charges(world):
    env, _cluster, _nodes, pfs, _hdfs, _scidp = world
    seed_scinc(pfs)
    cache = {}
    t0 = env.now
    first = explore(world, header_cache=cache)
    cold = env.now - t0
    assert "/data/plot_18_00_00.nc" in cache
    t1 = env.now
    second = explore(world, header_cache=cache)
    warm = env.now - t1
    # a hit reuses the parsed entry and skips the probe reads; only the
    # directory-listing RPC is still charged
    assert second[0] is first[0]
    assert warm < cold / 2


def test_header_cache_off_by_default_recharges(world):
    env, _cluster, _nodes, pfs, _hdfs, _scidp = world
    seed_scinc(pfs)
    explore(world)
    t0 = env.now
    explore(world)
    assert env.now > t0  # historical behavior: every exploration pays
