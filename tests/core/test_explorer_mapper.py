"""Tests for the File Explorer and Data Mapper."""

import numpy as np
import pytest

from repro.core import DataMapper, FileExplorer
from repro.core.mapper import _leading_split

from tests.core.conftest import make_dataset, run, scinc_bytes


def seed_pfs(pfs):
    """One scientific file + one flat file, like the paper's example
    (plot_18_00_00.nc and plot_19_00_00.csv, §III-A.1)."""
    ds = make_dataset()
    pfs.store_file("/data/plot_18_00_00.nc", scinc_bytes(ds))
    pfs.store_file("/data/plot_19_00_00.csv", b"t,z,y,x,value\n" * 500)
    return ds


# ------------------------------------------------------------ explorer
def test_explorer_classifies_formats(world):
    env, _cluster, nodes, pfs, _hdfs, scidp = world
    seed_pfs(pfs)
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    explored = run(env, explorer.explore("/data"))
    by_path = {e.path: e for e in explored}
    assert by_path["/data/plot_18_00_00.nc"].format == "scinc"
    assert by_path["/data/plot_18_00_00.nc"].header is not None
    assert by_path["/data/plot_19_00_00.csv"].format == "flat"
    assert by_path["/data/plot_19_00_00.csv"].header is None


def test_explorer_single_file_path(world):
    env, _cluster, nodes, pfs, _hdfs, scidp = world
    seed_pfs(pfs)
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    explored = run(env, explorer.explore("/data/plot_18_00_00.nc"))
    assert len(explored) == 1
    assert explored[0].format == "scinc"


def test_explorer_missing_path_returns_empty(world):
    env, _cluster, nodes, _pfs, _hdfs, scidp = world
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    assert run(env, explorer.explore("/nope")) == []


def test_explorer_charges_io_time(world):
    env, _cluster, nodes, pfs, _hdfs, scidp = world
    seed_pfs(pfs)
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    t0 = env.now
    run(env, explorer.explore("/data"))
    assert env.now > t0


def test_explorer_detects_sdf5(world):
    from repro.formats import sdf5
    import io
    env, _cluster, nodes, pfs, _hdfs, scidp = world
    ds = make_dataset(n_vars=1)
    buf = io.BytesIO()
    sdf5.write(buf, ds)
    pfs.store_file("/h5/sim.h5", buf.getvalue())
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    explored = run(env, explorer.explore("/h5"))
    assert explored[0].format == "sdf5"


# -------------------------------------------------------------- mapper
def explore(world):
    env, _cluster, nodes, pfs, hdfs, scidp = world
    ds = seed_pfs(pfs)
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    return env, hdfs, ds, run(env, explorer.explore("/data"))


def test_mapper_creates_variable_virtual_files(world):
    env, hdfs, ds, explored = explore(world)
    mapper = DataMapper(hdfs.namenode)
    run(env, mapper.map_files(explored))
    # Directory tree mirrors the file name; one virtual file per variable.
    assert hdfs.namenode.exists("/scidp/data/plot_18_00_00.nc/var_A")
    assert hdfs.namenode.exists("/scidp/data/plot_18_00_00.nc/var_B")
    assert hdfs.namenode.exists("/scidp/data/plot_19_00_00.csv")


def test_mapper_chunk_aligned_blocks(world):
    env, hdfs, ds, explored = explore(world)
    mapper = DataMapper(hdfs.namenode)
    run(env, mapper.map_files(explored))
    blocks = hdfs.namenode.get_block_locations(
        "/scidp/data/plot_18_00_00.nc/var_A")
    # shape (4,8,8) with chunk (1,8,8) -> 4 chunks -> 4 dummy blocks.
    assert len(blocks) == 4
    for b in blocks:
        assert b.is_virtual
        assert b.locations == []
        assert b.virtual.hyperslab["aligned"] is True
        assert b.virtual.hyperslab["count"] == [1, 8, 8]


def test_mapper_block_length_is_stored_chunk_size(world):
    env, hdfs, ds, explored = explore(world)
    mapper = DataMapper(hdfs.namenode)
    run(env, mapper.map_files(explored))
    sci = next(e for e in explored if e.is_scientific)
    var = sci.header.variable("/var_A")
    blocks = hdfs.namenode.get_block_locations(
        "/scidp/data/plot_18_00_00.nc/var_A")
    assert [b.length for b in blocks] == [c.nbytes for c in var.chunks]


def test_mapper_flat_blocks_fixed_size(world):
    env, hdfs, _ds, explored = explore(world)
    mapper = DataMapper(hdfs.namenode, flat_block_size=3000)
    run(env, mapper.map_files(explored))
    blocks = hdfs.namenode.get_block_locations(
        "/scidp/data/plot_19_00_00.csv")
    flat_size = 14 * 500
    assert [b.length for b in blocks] == [3000, 3000, flat_size - 6000]
    offsets = [b.virtual.offset for b in blocks]
    assert offsets == [0, 3000, 6000]


def test_mapper_variable_subsetting(world):
    env, hdfs, _ds, explored = explore(world)
    mapper = DataMapper(hdfs.namenode)
    run(env, mapper.map_files(explored, variables=["var_A"]))
    assert hdfs.namenode.exists("/scidp/data/plot_18_00_00.nc/var_A")
    assert not hdfs.namenode.exists("/scidp/data/plot_18_00_00.nc/var_B")


def test_mapper_block_bytes_splits_chunks(world):
    env, hdfs, _ds, explored = explore(world)
    # chunk raw = 1*8*8*4 = 256 bytes; target 128 -> 2 blocks per chunk.
    mapper = DataMapper(hdfs.namenode, block_bytes=128)
    run(env, mapper.map_files(explored, variables=["var_A"]))
    blocks = hdfs.namenode.get_block_locations(
        "/scidp/data/plot_18_00_00.nc/var_A")
    assert len(blocks) == 8
    for b in blocks:
        assert b.virtual.hyperslab["aligned"] is False
        # Sub-blocks cover half a chunk along the leading in-chunk axis.
        assert b.virtual.hyperslab["count"][1] == 4


def test_mapper_group_tree_mirrored(world):
    import io
    from repro.formats import Dataset, scinc as scinc_mod
    env, _cluster, nodes, pfs, hdfs, scidp = world
    ds = Dataset()
    grp = ds.create_group("model")
    grp.create_variable("qr", ("x",), np.arange(8, dtype=np.float32))
    buf = io.BytesIO()
    scinc_mod.write(buf, ds)
    pfs.store_file("/deep/sim.nc", buf.getvalue())
    from repro.core import FileExplorer as FE
    explored = run(env, FE(scidp.pfs_client(nodes[0])).explore("/deep"))
    mapper = DataMapper(hdfs.namenode)
    run(env, mapper.map_files(explored))
    assert hdfs.namenode.exists("/scidp/deep/sim.nc/model/qr")


def test_mapping_table_registry(world):
    env, hdfs, _ds, explored = explore(world)
    mapper = DataMapper(hdfs.namenode)
    run(env, mapper.map_files(explored))
    assert len(mapper.table) == 3
    source, var = mapper.table.lookup("/scidp/data/plot_18_00_00.nc/var_A")
    assert source.path == "/data/plot_18_00_00.nc"
    assert var == "/var_A"
    source2, var2 = mapper.table.lookup("/scidp/data/plot_19_00_00.csv")
    assert var2 is None


def test_leading_split_helper():
    assert _leading_split((0, 0), (4, 8), 2) == [
        ((0, 0), (2, 8)), ((2, 0), (2, 8))]
    assert _leading_split((1, 0), (3, 8), 2) == [
        ((1, 0), (2, 8)), ((3, 0), (1, 8))]
    # More pieces than rows: capped at rows.
    assert len(_leading_split((0,), (2,), 5)) == 2
    assert _leading_split((), (), 3) == [((), ())]


def test_mapper_validation():
    import pytest as _pytest
    from repro.hdfs import NameNode
    from repro.sim import Environment
    nn = NameNode(Environment())
    with _pytest.raises(ValueError):
        DataMapper(nn, flat_block_size=0)
    with _pytest.raises(ValueError):
        DataMapper(nn, block_bytes=0)
