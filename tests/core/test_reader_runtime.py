"""Tests for the PFS Reader, SciDPInputFormat, and the SciDP facade."""

import numpy as np
import pytest

from repro.core import DataMapper, FileExplorer, PFSReader
from repro.mapreduce import JobConf

from tests.core.conftest import make_dataset, run, scinc_bytes


def seed(world, ds=None, level=4):
    env, _cluster, nodes, pfs, hdfs, scidp = world
    ds = ds or make_dataset()
    pfs.store_file("/data/plot_18_00_00.nc", scinc_bytes(ds, level))
    return env, nodes, pfs, hdfs, scidp, ds


def mapped_blocks(world, variables=None, block_bytes=None):
    env, nodes, pfs, hdfs, scidp, ds = seed(world)
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    explored = run(env, explorer.explore("/data"))
    mapper = DataMapper(hdfs.namenode, block_bytes=block_bytes)
    run(env, mapper.map_files(explored, variables=variables))
    blocks = hdfs.namenode.get_block_locations(
        "/scidp/data/plot_18_00_00.nc/var_A")
    return env, nodes, scidp, ds, blocks


# ------------------------------------------------------------ PFS reader
def test_reader_returns_exact_hyperslab(world):
    env, nodes, scidp, ds, blocks = mapped_blocks(world)
    reader = PFSReader(scidp.pfs_client(nodes[1]))
    got = run(env, reader.read_block(blocks[2].virtual))
    expect = ds.variables["var_A"].data[2:3]
    np.testing.assert_array_equal(got, expect)


def test_reader_accounts_compressed_and_raw_bytes(world):
    env, nodes, scidp, ds, blocks = mapped_blocks(world)
    reader = PFSReader(scidp.pfs_client(nodes[1]))
    run(env, reader.read_block(blocks[0].virtual))
    assert reader.bytes_fetched == blocks[0].length       # stored bytes
    assert reader.bytes_delivered == 8 * 8 * 4            # raw slab


def test_reader_flat_block(world):
    env, _cluster, nodes, pfs, hdfs, scidp = world
    payload = bytes(range(256)) * 20
    pfs.store_file("/data/notes.csv", payload)
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    explored = run(env, explorer.explore("/data"))
    mapper = DataMapper(hdfs.namenode, flat_block_size=2048)
    run(env, mapper.map_files(explored))
    blocks = hdfs.namenode.get_block_locations("/scidp/data/notes.csv")
    reader = PFSReader(scidp.pfs_client(nodes[1]))
    got = run(env, reader.read_block(blocks[1].virtual))
    assert got == payload[2048:4096]


def test_reader_uncompressed_container(world):
    env, _cluster, nodes, pfs, hdfs, scidp = world
    ds = make_dataset(n_vars=1)
    pfs.store_file("/raw/plot.nc", scinc_bytes(ds, level=0))
    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    explored = run(env, explorer.explore("/raw"))
    mapper = DataMapper(hdfs.namenode)
    run(env, mapper.map_files(explored))
    blocks = hdfs.namenode.get_block_locations("/scidp/raw/plot.nc/var_A")
    reader = PFSReader(scidp.pfs_client(nodes[1]))
    got = run(env, reader.read_block(blocks[0].virtual))
    np.testing.assert_array_equal(got, ds.variables["var_A"].data[0:1])


def test_reader_split_chunk_returns_subslab_but_fetches_whole_chunk(world):
    env, nodes, scidp, ds, blocks = mapped_blocks(world, block_bytes=128)
    assert len(blocks) == 8  # 4 chunks x 2 sub-blocks
    reader = PFSReader(scidp.pfs_client(nodes[1]))
    got = run(env, reader.read_block(blocks[1].virtual))
    expect = ds.variables["var_A"].data[0:1, 4:8, :]
    np.testing.assert_array_equal(got, expect)
    # Unaligned: the whole compressed chunk crossed the wire.
    chunk_bytes = blocks[0].virtual.hyperslab["chunks"][0]["nbytes"]
    assert reader.bytes_fetched == chunk_bytes
    assert reader.bytes_delivered == expect.nbytes


def test_whole_block_read_beats_64kb_streaming(world):
    """§III-A.3 ablation: single-request reads beat chopped reads."""
    env, nodes, scidp, _ds, blocks = mapped_blocks(world)
    vb = blocks[0].virtual

    t0 = env.now
    run(env, PFSReader(scidp.pfs_client(nodes[1])).read_block(vb))
    whole = env.now - t0

    t1 = env.now
    chopped_reader = PFSReader(scidp.pfs_client(nodes[2]), granularity=16)
    run(env, chopped_reader.read_block(vb))
    chopped = env.now - t1
    assert whole < chopped


def test_reader_validation(world):
    env, _cluster, nodes, _pfs, _hdfs, scidp = world
    with pytest.raises(ValueError):
        PFSReader(scidp.pfs_client(nodes[0]), granularity=0)
    with pytest.raises(ValueError):
        PFSReader(scidp.pfs_client(nodes[0]), max_inflight=-1)


def test_block_raw_bytes_empty_count_is_zero(world):
    """Satellite fix: a zero-dimensional hyperslab holds no payload."""
    from repro.hdfs.block import VirtualBlock

    empty = VirtualBlock(
        source_path="/f",
        hyperslab={"variable": "v", "start": (), "count": (),
                   "dtype": "float32", "chunks": [], "compressed": True})
    assert PFSReader.block_raw_bytes(empty) == 0
    flat = VirtualBlock(source_path="/f", offset=0, length=77)
    assert PFSReader.block_raw_bytes(flat) == 77


def test_windowed_chopped_read_matches_serial_and_is_faster(world):
    """The in-flight window changes timing, never the returned bytes."""
    env, nodes, scidp, ds, blocks = mapped_blocks(world)
    vb = blocks[0].virtual
    expect = ds.variables["var_A"].data[0:1]

    t0 = env.now
    serial_reader = PFSReader(scidp.pfs_client(nodes[1]), granularity=16,
                              max_inflight=1)
    serial_data = run(env, serial_reader.read_block(vb))
    serial = env.now - t0

    t1 = env.now
    windowed_reader = PFSReader(scidp.pfs_client(nodes[2]), granularity=16,
                                max_inflight=4)
    windowed_data = run(env, windowed_reader.read_block(vb))
    windowed = env.now - t1

    np.testing.assert_array_equal(serial_data, expect)
    np.testing.assert_array_equal(windowed_data, expect)
    assert serial_reader.bytes_fetched == windowed_reader.bytes_fetched
    assert windowed < serial


def test_reader_cache_serves_repeat_reads_without_refetch(world):
    from repro.sim import ReadAheadCache

    env, nodes, scidp, ds, blocks = mapped_blocks(world)
    vb = blocks[0].virtual
    client = scidp.pfs_client(nodes[1])
    cache = ReadAheadCache(env, capacity_bytes=1 << 20)

    first = run(env, PFSReader(client, cache=cache).read_block(vb))
    read_after_first = client.bytes_read

    t0 = env.now
    second = run(env, PFSReader(client, cache=cache).read_block(vb))
    cached_time = env.now - t0

    np.testing.assert_array_equal(first, second)
    assert client.bytes_read == read_after_first  # no second PFS fetch
    assert cache.stats.hits >= 1
    assert cached_time == 0.0 or cached_time < 1e-6


def test_prefetch_block_fills_cache_for_demand_read(world):
    from repro.sim import ReadAheadCache

    env, nodes, scidp, ds, blocks = mapped_blocks(world)
    vb = blocks[0].virtual
    client = scidp.pfs_client(nodes[1])
    cache = ReadAheadCache(env, capacity_bytes=1 << 20)

    prefetcher = PFSReader(client, cache=cache)
    run(env, prefetcher.prefetch_block(vb))
    assert cache.stats.prefetch_fills >= 1
    fetched = client.bytes_read

    got = run(env, PFSReader(client, cache=cache).read_block(vb))
    np.testing.assert_array_equal(got, ds.variables["var_A"].data[0:1])
    assert client.bytes_read == fetched  # demand read hit the cache


# --------------------------------------------------------- input format
def npsum_mapper(ctx, key, value):
    ctx.emit("total", float(np.asarray(value, dtype=np.float64).sum()))
    ctx.charge(1e-6)


def total_reducer(ctx, key, values):
    ctx.emit(key, sum(values))


def test_scidp_job_end_to_end(world):
    env, nodes, pfs, hdfs, scidp, ds = seed(world)
    job = JobConf(
        name="sum",
        mapper=npsum_mapper,
        reducer=total_reducer,
        input_format=scidp.input_format(variables=["var_A"]),
        n_reducers=1,
        input_paths=["pfs:///data"],
        task_startup=0.01,
    )
    result = run(env, scidp.run_job(job))
    got = dict(result.outputs[0])["total"]
    expect = float(ds.variables["var_A"].data.astype(np.float64).sum())
    assert got == pytest.approx(expect, rel=1e-6)
    # One split per chunk of the selected variable only.
    assert result.counters.value("job", "splits") == 4
    assert result.counters.value("scidp", "blocks_read") == 4


def test_scidp_subsetting_reduces_bytes(world):
    env, nodes, pfs, hdfs, scidp, ds = seed(world)

    def run_with(variables, name):
        job = JobConf(
            name=name, mapper=npsum_mapper, reducer=total_reducer,
            input_format=scidp.input_format(variables=variables),
            n_reducers=1, input_paths=["pfs:///data"], task_startup=0.0)
        return run(env, scidp.run_job(job))

    all_vars = run_with(None, "all")
    one_var = run_with(["var_A"], "one")
    assert (one_var.counters.value("scidp", "bytes_fetched")
            < all_vars.counters.value("scidp", "bytes_fetched"))


def test_scidp_falls_back_to_hdfs_for_plain_paths(world):
    env, _cluster, nodes, pfs, hdfs, scidp = world
    hdfs.store_file_sync("/plain/input.txt", b"a b\nb\n")

    def wc_mapper(ctx, _off, line):
        for w in line.split():
            ctx.emit(w, 1)

    job = JobConf(
        name="wc", mapper=wc_mapper, reducer=total_reducer,
        input_format=scidp.input_format(),
        n_reducers=1, input_paths=["/plain"], task_startup=0.0)
    result = run(env, scidp.run_job(job))
    got = dict(result.outputs[0])
    assert got == {b"a": 1, b"b": 2}


def test_scidp_mixed_inputs(world):
    env, nodes, pfs, hdfs, scidp, ds = seed(world)
    hdfs.store_file_sync("/plain/input.txt", b"x\n")

    seen = {"array": 0, "text": 0}

    def probe_mapper(ctx, key, value):
        if isinstance(value, np.ndarray):
            seen["array"] += 1
        else:
            seen["text"] += 1
        ctx.emit("n", 1)

    job = JobConf(
        name="mixed", mapper=probe_mapper, reducer=total_reducer,
        input_format=scidp.input_format(variables=["var_A"]),
        n_reducers=1, input_paths=["pfs:///data", "/plain"],
        task_startup=0.0)
    result = run(env, scidp.run_job(job))
    assert seen["array"] == 4 and seen["text"] == 1
    assert dict(result.outputs[0])["n"] == 5


def test_mapping_cache_reused_across_jobs(world):
    env, nodes, pfs, hdfs, scidp, ds = seed(world)

    def job(name):
        return JobConf(
            name=name, mapper=npsum_mapper, reducer=total_reducer,
            input_format=scidp.input_format(variables=["var_A"]),
            n_reducers=1, input_paths=["pfs:///data"], task_startup=0.0)

    run(env, scidp.run_job(job("first")))
    # Second job over the same input: mapping cached, no duplicate
    # namespace creation (create_virtual_file would raise on a dup).
    result = run(env, scidp.run_job(job("second")))
    assert result.counters.value("scidp", "blocks_read") == 4


def test_scidp_rmr_session_over_pfs_data(world):
    from repro.rlang.rmr import keyval
    env, nodes, pfs, hdfs, scidp, ds = seed(world)
    session = scidp.rmr_session()

    def level_max(key, value):
        return keyval("max", float(np.asarray(value).max()))

    def overall(key, values):
        return keyval(key, max(values))

    result = run(env, session.mapreduce(
        input="pfs:///data", map=level_max, reduce=overall,
        input_format=scidp.input_format(variables=["var_A"]),
        name="rmr-max"))
    got = dict(result.outputs[0])["max"]
    assert got == pytest.approx(float(ds.variables["var_A"].data.max()))


def test_scidp_processes_sdf5_hierarchical_files(world):
    """End-to-end over the HDF5 stand-in: nested groups map to nested
    virtual directories and the PFS Reader serves their hyperslabs."""
    import io
    from repro.formats import Dataset, sdf5

    env, _cluster, nodes, pfs, hdfs, scidp = world
    ds = Dataset()
    model = ds.create_group("model")
    micro = model.create_group("microphysics")
    data = np.arange(64, dtype=np.float32).reshape(4, 16)
    micro.create_variable("qc", ("z", "y"), data, chunk_shape=(1, 16))
    buf = io.BytesIO()
    sdf5.write(buf, ds)
    pfs.store_file("/h5run/sim.h5", buf.getvalue())

    job = JobConf(
        name="h5sum",
        mapper=npsum_mapper,
        reducer=total_reducer,
        input_format=scidp.input_format(),
        n_reducers=1,
        input_paths=["pfs:///h5run"],
        task_startup=0.0,
    )
    result = run(env, scidp.run_job(job))
    assert hdfs.namenode.exists("/scidp/h5run/sim.h5/model/microphysics/qc")
    got = dict(result.outputs[0])["total"]
    assert got == pytest.approx(float(data.astype(np.float64).sum()))
    assert result.counters.value("scidp", "blocks_read") == 4
