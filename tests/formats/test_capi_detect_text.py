"""Tests for the netCDF-style C API, format detection, and text conversion."""

import io

import numpy as np
import pytest

from repro.formats import Dataset, detect_format
from repro.formats import scinc
from repro.formats.container import FormatError
from repro.formats.detect import FORMAT_FLAT, register_format
from repro.formats.scinc.capi import (
    nc_close,
    nc_get_var,
    nc_get_vara,
    nc_inq,
    nc_inq_var,
    nc_inq_varid,
    nc_open,
)
from repro.formats.text import (
    convert_to_csv,
    estimate_csv_size,
    read_table,
)


def sample_file():
    ds = Dataset()
    data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
    ds.create_variable("qr", ("z", "y", "x"), data, chunk_shape=(1, 3, 4))
    ds.create_variable("qc", ("z", "y", "x"), data * 2, chunk_shape=(1, 3, 4))
    buf = io.BytesIO()
    scinc.write(buf, ds)
    return buf, data


# ---------------------------------------------------------------- C API
def test_capi_open_inq_close():
    buf, _ = sample_file()
    ncid = nc_open(buf)
    info = nc_inq(ncid)
    assert info["nvars"] == 2
    assert info["variables"] == ["/qr", "/qc"]
    nc_close(ncid)
    with pytest.raises(FormatError):
        nc_inq(ncid)


def test_capi_inq_var_metadata():
    buf, _ = sample_file()
    ncid = nc_open(buf)
    varid = nc_inq_varid(ncid, "qr")
    meta = nc_inq_var(ncid, varid)
    assert meta["name"] == "qr"
    assert meta["shape"] == (2, 3, 4)
    assert meta["dims"] == ("z", "y", "x")
    assert meta["nchunks"] == 2
    nc_close(ncid)


def test_capi_get_vara_hyperslab():
    buf, data = sample_file()
    ncid = nc_open(buf)
    varid = nc_inq_varid(ncid, "qr")
    got = nc_get_vara(ncid, varid, (1, 0, 1), (1, 2, 2))
    np.testing.assert_array_equal(got, data[1:2, 0:2, 1:3])
    np.testing.assert_array_equal(nc_get_var(ncid, varid), data)
    nc_close(ncid)


def test_capi_bad_ids():
    buf, _ = sample_file()
    ncid = nc_open(buf)
    with pytest.raises(FormatError):
        nc_inq_varid(ncid, "missing")
    with pytest.raises(FormatError):
        nc_inq_var(ncid, 99)
    nc_close(ncid)
    with pytest.raises(FormatError):
        nc_close(ncid)


def test_capi_open_rejects_non_scinc():
    with pytest.raises(FormatError):
        nc_open(io.BytesIO(b"not a scientific file at all......"))


# ----------------------------------------------------------------- detect
def test_detect_scinc_sdf5_flat():
    from repro.formats import sdf5
    buf, _ = sample_file()
    assert detect_format(buf) == "scinc"
    ds = Dataset()
    ds.create_variable("v", ("x",), np.zeros(2, dtype=np.float32))
    h5 = io.BytesIO()
    sdf5.write(h5, ds)
    assert detect_format(h5) == "sdf5"
    assert detect_format(io.BytesIO(b"a,b\n1,2\n")) == FORMAT_FLAT


def test_register_format_duplicate_rejected():
    with pytest.raises(ValueError):
        register_format("scinc", lambda f: False)


# ------------------------------------------------------------------- text
def test_convert_to_csv_and_read_table_roundtrip():
    buf, data = sample_file()
    reader = scinc.Reader(buf)
    out = io.BytesIO()
    convert_to_csv(reader, out, variables=["/qr"])
    out.seek(0)
    tables = read_table(out)
    assert set(tables) == {"qr"}
    np.testing.assert_allclose(tables["qr"], data, rtol=1e-6)


def test_csv_conversion_inflates_size():
    # Realistic float32 payloads (full mantissas) inflate heavily as text.
    rng = np.random.default_rng(7)
    data = rng.random((4, 5, 6)).astype(np.float32)
    ds = Dataset()
    ds.create_variable("qr", ("z", "y", "x"), data)
    buf = io.BytesIO()
    scinc.write(buf, ds)
    reader = scinc.Reader(buf)
    out = io.BytesIO()
    nbytes = convert_to_csv(reader, out, variables=["/qr"])
    assert nbytes > 4 * data.nbytes  # text ≫ raw binary


def test_estimate_csv_size_magnitude():
    # 4-byte elements as 4-D indexed text rows: ~33 bytes each.
    est = estimate_csv_size(raw_nbytes=4_000_000, itemsize=4, rank=4)
    assert 7 <= est / 4_000_000 <= 10


def test_convert_all_variables_by_default():
    buf, _ = sample_file()
    reader = scinc.Reader(buf)
    out = io.BytesIO()
    convert_to_csv(reader, out)
    out.seek(0)
    tables = read_table(out)
    assert set(tables) == {"qr", "qc"}
