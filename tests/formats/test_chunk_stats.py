"""Per-chunk zone-map statistics in the scinc/sdf5 container header.

The SQL planner prunes chunks against range predicates using the
``[min, max, count]`` zone maps the writer records at ``stats=True``.
These tests pin the stats contract: edge cases (all-NaN chunks,
single-element chunks, non-numeric variables), the opt-in byte-layout
guarantee (default-written files are byte-identical with or without the
stats code path), and backward-compatible parsing of stats-less chunk
entries.
"""

import io

import numpy as np

from repro.formats import Dataset, scinc
from repro.formats.container import (
    ChunkRecord,
    chunk_stats,
    read_header,
)


def make_file(data, chunk_shape=None, stats=False, name="var"):
    ds = Dataset(attrs={"title": "stats"})
    ds.create_variable(name, tuple(f"d{i}" for i in range(data.ndim)),
                       data, chunk_shape=chunk_shape)
    buf = io.BytesIO()
    scinc.write(buf, ds, stats=stats)
    return buf


def stats_of(buf, path="/var"):
    return [rec.stats for rec in
            read_header(io.BytesIO(buf.getvalue())).variable(path).chunks]


# ---------------------------------------------------------------- kernel

def test_chunk_stats_basic_float():
    assert chunk_stats(np.array([3.0, 1.0, 2.0])) == (1.0, 3.0, 3)


def test_chunk_stats_ignores_nan():
    got = chunk_stats(np.array([np.nan, 5.0, np.nan, -2.0]))
    assert got == (-2.0, 5.0, 2)


def test_chunk_stats_all_nan_chunk():
    assert chunk_stats(np.full(4, np.nan)) == (None, None, 0)


def test_chunk_stats_single_element():
    assert chunk_stats(np.array([7.5])) == (7.5, 7.5, 1)
    assert chunk_stats(np.array([np.nan])) == (None, None, 0)


def test_chunk_stats_integer_and_bool():
    # no-NaN dtypes take the direct min/max path
    assert chunk_stats(np.arange(5, dtype=np.int32)) == (0.0, 4.0, 5)
    assert chunk_stats(np.array([True, False])) == (0.0, 1.0, 2)


def test_chunk_stats_non_numeric_returns_none():
    assert chunk_stats(np.array(["a", "b"])) is None
    assert chunk_stats(np.array([object(), object()])) is None


# ------------------------------------------------------------ round trip

def test_writer_records_stats_per_chunk():
    data = np.arange(12, dtype=np.float64).reshape(3, 4)
    buf = make_file(data, chunk_shape=(1, 4), stats=True)
    assert stats_of(buf) == [
        (0.0, 3.0, 4), (4.0, 7.0, 4), (8.0, 11.0, 4)]


def test_reader_exposes_stats_without_payload_reads():
    """The zone map lives in the header: the stats survive when every
    chunk payload byte is zeroed out."""
    data = np.linspace(-1.0, 1.0, 16, dtype=np.float64)
    buf = make_file(data, chunk_shape=(8,), stats=True)
    raw = bytearray(buf.getvalue())
    header = read_header(io.BytesIO(bytes(raw)))
    raw[header.data_start:] = bytes(len(raw) - header.data_start)
    mangled = read_header(io.BytesIO(bytes(raw)))
    assert [rec.stats for rec in mangled.variable("/var").chunks] == \
        [rec.stats for rec in header.variable("/var").chunks]
    assert mangled.variable("/var").has_stats


def test_all_nan_chunk_roundtrips_as_count_zero():
    data = np.array([1.0, 2.0, np.nan, np.nan])
    buf = make_file(data, chunk_shape=(2,), stats=True)
    assert stats_of(buf) == [(1.0, 2.0, 2), (None, None, 0)]


def test_string_variable_has_no_stats_even_when_requested():
    data = np.array([["x", "y"], ["z", "w"]])
    buf = make_file(data, stats=True)
    var = read_header(io.BytesIO(buf.getvalue())).variable("/var")
    assert all(rec.stats is None for rec in var.chunks)
    assert not var.has_stats


def test_default_write_is_byte_identical_to_pre_stats_layout():
    """stats is opt-in: the default write path produces the same bytes
    it always has, so the golden perf-smoke timings stay pinned."""
    data = np.arange(64, dtype=np.float32).reshape(8, 8)
    plain = make_file(data).getvalue()
    again = make_file(data, stats=False).getvalue()
    assert plain == again
    assert b'"chunks"' in plain  # sanity: header JSON present
    var = read_header(io.BytesIO(plain)).variable("/var")
    assert all(rec.stats is None for rec in var.chunks)
    assert not var.has_stats
    # and the stats variant is strictly a header growth
    withstats = make_file(data, stats=True).getvalue()
    assert len(withstats) > len(plain)


def test_four_element_chunk_entries_parse_as_stats_none():
    """Stats-less (legacy-layout) chunk entries keep parsing: the
    optional fifth element is the only difference."""
    data = np.arange(6, dtype=np.float64)
    buf = make_file(data, chunk_shape=(3,), stats=True)
    raw = buf.getvalue()
    header = read_header(io.BytesIO(raw))
    rec = header.variable("/var").chunks[0]
    assert isinstance(rec, ChunkRecord)
    assert rec.stats == (0.0, 2.0, 3)
    # same file written without stats: four-element entries, stats=None
    legacy = make_file(data, chunk_shape=(3,))
    lrec = read_header(io.BytesIO(legacy.getvalue())).variable("/var")
    assert [c.stats for c in lrec.chunks] == [None, None]


def test_has_stats_requires_every_chunk():
    var = read_header(io.BytesIO(
        make_file(np.arange(4.0), chunk_shape=(2,), stats=True).getvalue()
    )).variable("/var")
    assert var.has_stats
    partial = var.chunks[0], ChunkRecord(
        var.chunks[1].index, var.chunks[1].offset,
        var.chunks[1].nbytes, var.chunks[1].raw_nbytes, stats=None)
    var.chunks = list(partial)
    assert not var.has_stats
