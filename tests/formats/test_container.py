"""Round-trip and hyperslab tests for the SCNC/SDF5 container."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import Dataset
from repro.formats import scinc, sdf5
from repro.formats.container import FormatError, read_header


def make_file(data, chunk_shape=None, level=4, fmt=scinc):
    ds = Dataset(attrs={"title": "test"})
    ds.create_variable("var", tuple(f"d{i}" for i in range(data.ndim)),
                       data, chunk_shape=chunk_shape,
                       attrs={"units": "kg"})
    buf = io.BytesIO()
    fmt.write(buf, ds, compression_level=level)
    return buf


def test_roundtrip_full_variable():
    data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
    buf = make_file(data)
    r = scinc.Reader(buf)
    assert r.variable_paths() == ["/var"]
    np.testing.assert_array_equal(r.get_vara("/var"), data)


def test_roundtrip_uncompressed():
    data = np.arange(10, dtype=np.int64)
    buf = make_file(data, level=0)
    r = scinc.Reader(buf)
    np.testing.assert_array_equal(r.get_vara("/var"), data)
    var = r.variable("/var")
    assert var.stored_nbytes == data.nbytes  # raw chunks


def test_compression_reduces_stored_size():
    data = np.zeros((64, 64), dtype=np.float32)  # very compressible
    buf = make_file(data, level=4)
    r = scinc.Reader(buf)
    var = r.variable("/var")
    assert var.stored_nbytes < var.nbytes / 10


def test_hyperslab_read_middle():
    data = np.arange(1000, dtype=np.float32).reshape(10, 10, 10)
    buf = make_file(data, chunk_shape=(3, 4, 5))
    r = scinc.Reader(buf)
    got = r.get_vara("/var", (2, 3, 4), (5, 4, 3))
    np.testing.assert_array_equal(got, data[2:7, 3:7, 4:7])


def test_hyperslab_only_reads_needed_chunks():
    data = np.arange(100, dtype=np.float32).reshape(10, 10)
    buf = make_file(data, chunk_shape=(2, 10))
    r = scinc.Reader(buf)
    var = r.variable("/var")
    # Rows 0-1 live in chunk (0,0) only.
    assert len(r.chunks_for_slab(var, (0, 0), (2, 10))) == 1
    # Rows 1-2 straddle chunks (0,0) and (1,0).
    assert len(r.chunks_for_slab(var, (1, 0), (2, 10))) == 2


def test_slab_out_of_range_rejected():
    data = np.zeros((4, 4), dtype=np.float32)
    buf = make_file(data)
    r = scinc.Reader(buf)
    var = r.variable("/var")
    with pytest.raises(ValueError):
        r.chunks_for_slab(var, (0, 0), (5, 4))
    with pytest.raises(ValueError):
        r.chunks_for_slab(var, (-1, 0), (2, 2))


def test_zero_count_slab_returns_empty():
    data = np.zeros((4, 4), dtype=np.float32)
    buf = make_file(data)
    r = scinc.Reader(buf)
    out = r.get_vara("/var", (0, 0), (0, 4))
    assert out.shape == (0, 4)


def test_groups_roundtrip():
    ds = Dataset()
    g = ds.create_group("model")
    inner = g.create_group("level2")
    inner.create_variable("qc", ("x",), np.arange(5, dtype=np.float32))
    buf = io.BytesIO()
    scinc.write(buf, ds)
    r = scinc.Reader(buf)
    assert r.variable_paths() == ["/model/level2/qc"]
    np.testing.assert_array_equal(
        r.get_vara("/model/level2/qc"), np.arange(5, dtype=np.float32))


def test_attrs_roundtrip():
    data = np.zeros(3, dtype=np.float32)
    buf = make_file(data)
    r = scinc.Reader(buf)
    assert r.variable("/var").attrs == {"units": "kg"}


def test_magic_mismatch_raises():
    data = np.zeros(3, dtype=np.float32)
    buf = make_file(data, fmt=scinc)
    with pytest.raises(FormatError):
        sdf5.Reader(buf)


def test_truncated_file_raises():
    buf = io.BytesIO(b"SCNC")
    with pytest.raises(FormatError):
        read_header(buf)


def test_corrupt_header_raises():
    buf = io.BytesIO(scinc.MAGIC + (99999).to_bytes(8, "little") + b"{}")
    with pytest.raises(FormatError):
        read_header(buf)


def test_is_scinc_and_h5f_is_hdf5():
    data = np.zeros(3, dtype=np.float32)
    nc = make_file(data, fmt=scinc)
    h5 = make_file(data, fmt=sdf5)
    flat = io.BytesIO(b"plain,text,file\n1,2,3\n")
    assert scinc.is_scinc(nc) and not scinc.is_scinc(h5)
    assert sdf5.h5f_is_hdf5(h5) and not sdf5.h5f_is_hdf5(nc)
    assert not scinc.is_scinc(flat) and not sdf5.h5f_is_hdf5(flat)


def test_multiple_variables_independent_chunk_regions():
    ds = Dataset()
    a = np.arange(12, dtype=np.float32).reshape(3, 4)
    b = np.arange(100, 110, dtype=np.float64)
    ds.create_variable("a", ("y", "x"), a, chunk_shape=(2, 4))
    ds.create_variable("b", ("t",), b)
    buf = io.BytesIO()
    scinc.write(buf, ds)
    r = scinc.Reader(buf)
    np.testing.assert_array_equal(r.get_vara("/a"), a)
    np.testing.assert_array_equal(r.get_vara("/b"), b)


def test_unwritten_lazy_variable_rejected():
    from repro.formats.model import Variable
    ds = Dataset()
    ds.add_variable(Variable("v", ("x",), shape=(4,), dtype=np.float32))
    with pytest.raises(FormatError):
        scinc.write(io.BytesIO(), ds)


# ------------------------------------------------------------- property
@st.composite
def array_and_chunks(draw):
    rank = draw(st.integers(min_value=1, max_value=3))
    shape = tuple(draw(st.integers(min_value=1, max_value=8))
                  for _ in range(rank))
    chunk = tuple(draw(st.integers(min_value=1, max_value=s))
                  for s in shape)
    n = int(np.prod(shape))
    values = draw(st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=n, max_size=n))
    data = np.array(values, dtype=np.float32).reshape(shape)
    return data, chunk


@given(array_and_chunks())
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_any_chunking(case):
    data, chunk = case
    buf = make_file(data, chunk_shape=chunk)
    r = scinc.Reader(buf)
    np.testing.assert_array_equal(r.get_vara("/var"), data)


@given(array_and_chunks(), st.data())
@settings(max_examples=40, deadline=None)
def test_property_hyperslab_equals_numpy_slice(case, payload):
    data, chunk = case
    start = tuple(
        payload.draw(st.integers(min_value=0, max_value=s - 1))
        for s in data.shape)
    count = tuple(
        payload.draw(st.integers(min_value=1, max_value=s - st_))
        for s, st_ in zip(data.shape, start))
    buf = make_file(data, chunk_shape=chunk)
    r = scinc.Reader(buf)
    got = r.get_vara("/var", start, count)
    expect = data[tuple(slice(s, s + c) for s, c in zip(start, count))]
    np.testing.assert_array_equal(got, expect)


def test_writer_is_deterministic():
    """Identical datasets serialize to identical bytes — virtual block
    offsets computed by one process are valid for every other."""
    import numpy as np
    rng = np.random.default_rng(0)
    data = rng.random((4, 8)).astype(np.float32)
    a = make_file(data, chunk_shape=(2, 8))
    b = make_file(data, chunk_shape=(2, 8))
    assert a.getvalue() == b.getvalue()


def test_header_json_is_sorted_and_compact():
    import struct
    data = np.zeros((2, 2), dtype=np.float32)
    raw = make_file(data).getvalue()
    (header_len,) = struct.unpack("<Q", raw[6:14])
    header = raw[14:14 + header_len]
    # Compact separators: no ": " or ", " inside the JSON header.
    assert b": " not in header and b", " not in header
    import json
    parsed = json.loads(header)
    assert list(parsed) == sorted(parsed)  # sort_keys=True
