"""Tests for the dataset/group/variable model."""

import numpy as np
import pytest

from repro.formats import Dataset, Group, Variable
from repro.formats.model import default_chunk_shape


def test_variable_from_data_infers_shape_and_dtype():
    v = Variable("qr", ("z", "y"), data=np.zeros((3, 4), dtype=np.float32))
    assert v.shape == (3, 4)
    assert v.dtype == np.float32
    assert v.nbytes == 48


def test_variable_lazy_requires_shape_and_dtype():
    with pytest.raises(ValueError):
        Variable("v", ("x",))


def test_variable_dims_rank_mismatch_rejected():
    with pytest.raises(ValueError):
        Variable("v", ("x",), data=np.zeros((2, 2)))


def test_variable_name_validation():
    with pytest.raises(ValueError):
        Variable("a/b", ("x",), data=np.zeros(3))
    with pytest.raises(ValueError):
        Variable("", ("x",), data=np.zeros(3))


def test_variable_bad_chunk_shape_rejected():
    with pytest.raises(ValueError):
        Variable("v", ("x",), data=np.zeros(4), chunk_shape=(9,))
    with pytest.raises(ValueError):
        Variable("v", ("x",), data=np.zeros(4), chunk_shape=(0,))


def test_chunk_grid_and_slices():
    v = Variable("v", ("z", "y"), data=np.zeros((5, 4), dtype=np.float32),
                 chunk_shape=(2, 4))
    assert v.chunk_grid() == (3, 1)
    assert list(v.iter_chunk_indices()) == [(0, 0), (1, 0), (2, 0)]
    assert v.chunk_slices((2, 0)) == (slice(4, 5), slice(0, 4))


def test_default_chunk_shape_splits_leading_dim():
    shape = (50, 1250, 1250)
    cs = default_chunk_shape(shape, target_bytes=4 * 1024 * 1024, itemsize=4)
    assert cs[1:] == (1250, 1250)
    assert 1 <= cs[0] <= 50


def test_default_chunk_shape_scalar():
    assert default_chunk_shape(()) == ()


def test_group_dims_conflict_rejected():
    g = Group("g")
    g.create_dim("x", 5)
    with pytest.raises(ValueError):
        g.create_dim("x", 6)


def test_group_variable_dim_consistency():
    g = Group("g")
    g.create_dim("x", 5)
    with pytest.raises(ValueError):
        g.create_variable("v", ("x",), np.zeros(4, dtype=np.float32))


def test_group_registers_dims_from_variable():
    g = Group("g")
    g.create_variable("v", ("t", "x"), np.zeros((2, 3), dtype=np.float32))
    assert g.dims == {"t": 2, "x": 3}


def test_group_duplicate_variable_rejected():
    g = Group("g")
    g.create_variable("v", ("x",), np.zeros(3))
    with pytest.raises(ValueError):
        g.create_variable("v", ("x",), np.zeros(3))


def test_dataset_walk_and_all_variables():
    ds = Dataset()
    ds.create_variable("top", ("x",), np.zeros(2, dtype=np.float32))
    sub = ds.create_group("model")
    sub.create_variable("qr", ("x",), np.zeros(2, dtype=np.float32))
    deep = sub.create_group("inner")
    deep.create_variable("qc", ("x",), np.zeros(2, dtype=np.float32))
    paths = dict(ds.all_variables())
    assert set(paths) == {"/top", "/model/qr", "/model/inner/qc"}


def test_attrs_validation():
    with pytest.raises(TypeError):
        Group("g", attrs={"bad": object()})
    g = Group("g", attrs={"units": "mm/h", "scale": 1.5, "levels": [1, 2]})
    assert g.attrs["units"] == "mm/h"
