"""Shared HDFS test fixtures."""

import pytest

from repro.cluster import Cluster, DiskSpec, LinkSpec, NodeSpec
from repro.hdfs import HDFS
from repro.sim import Environment


def small_spec(disk_bw=1000.0, nic_bw=10_000.0, cpus=4):
    return NodeSpec(
        cpus=cpus,
        memory=10**9,
        disks=(DiskSpec(bandwidth=disk_bw, seek_latency=0.0),),
        nic=LinkSpec(bandwidth=nic_bw, latency=0.0),
    )


@pytest.fixture
def world():
    """4 compute nodes, all datanodes; block size 100 bytes, repl 1."""
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(4)]
    hdfs = HDFS(env, cluster.network, block_size=100, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    return env, cluster, hdfs, nodes


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value
