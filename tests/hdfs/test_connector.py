"""Tests for the PFS-backed HDFS connector (unified-FS baseline)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.hdfs import HDFS, HDFSError, PFSConnector
from repro.pfs import PFS, StripeLayout
from repro.sim import Environment

from tests.hdfs.conftest import run, small_spec


def payload(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


def make_world(n_compute=4):
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(n_compute)]
    from repro.cluster import DiskSpec, LinkSpec, NodeSpec
    oss_spec = NodeSpec(
        cpus=4, memory=10**9,
        disks=tuple(DiskSpec(bandwidth=1000.0, seek_latency=0.0)
                    for _ in range(4)),
        nic=LinkSpec(bandwidth=10_000.0, latency=0.0))
    oss = cluster.add_node("oss", oss_spec, role="storage")
    pfs = PFS(env, cluster.network, oss, [oss],
              default_layout=StripeLayout(stripe_size=64, stripe_count=4))
    connector = PFSConnector(pfs, block_size=100, rpc_size=50,
                             lock_latency=0.001)
    return env, cluster, nodes, pfs, connector


def test_connector_blocks_synthesized_without_locations():
    _env, _cluster, _nodes, pfs, connector = make_world()
    pfs.store_file("/f", payload(250))
    blocks = connector.get_blocks("/f")
    assert [b.length for b in blocks] == [100, 100, 50]
    assert all(b.locations == [] for b in blocks)


def test_connector_read_roundtrip():
    env, _cluster, nodes, pfs, connector = make_world()
    data = payload(300, seed=1)
    pfs.store_file("/f", data)
    client = connector.client(nodes[0])
    assert run(env, client.read("/f")) == data


def test_connector_read_block_roundtrip():
    env, _cluster, nodes, pfs, connector = make_world()
    data = payload(250, seed=2)
    pfs.store_file("/f", data)
    client = connector.client(nodes[1])

    def proc():
        blocks = yield env.process(client.get_block_locations("/f"))
        got = []
        for b in blocks:
            got.append((yield env.process(client.read_block(b))))
        return b"".join(got)

    assert run(env, proc()) == data


def test_connector_block_registry_shared_across_clients():
    """Splits enumerated by one client must be readable by another —
    the scheduler/worker split in the MapReduce engine."""
    env, _cluster, nodes, pfs, connector = make_world()
    data = payload(100)
    pfs.store_file("/f", data)
    blocks = connector.get_blocks("/f")  # e.g. via the master's client
    worker = connector.client(nodes[2])
    got = run(env, worker.read_block(blocks[0]))
    assert got == data


def test_connector_unknown_block_rejected():
    from repro.hdfs.block import BlockInfo
    env, _cluster, nodes, _pfs, connector = make_world()
    client = connector.client(nodes[0])
    bogus = BlockInfo(block_id=-999, length=10, locations=[])

    def proc():
        yield from client.read_block(bogus)

    with pytest.raises(HDFSError):
        run(env, proc())


def test_connector_write_then_read():
    env, _cluster, nodes, pfs, connector = make_world()
    data = payload(220, seed=3)
    client = connector.client(nodes[0])

    def proc():
        yield env.process(client.write("/out", data))
        return (yield env.process(client.read("/out")))

    assert run(env, proc()) == data
    assert pfs.read_file_sync("/out") == data


def test_connector_pays_lock_latency_per_rpc():
    env, _cluster, nodes, pfs, connector = make_world()
    pfs.store_file("/f", payload(200))
    client = connector.client(nodes[0])
    run(env, client.read("/f"))
    # 200 bytes at rpc_size 50 -> 4 lock round trips of 1 ms each,
    # plus transfer time; total must exceed the pure lock cost.
    assert env.now > 4 * 0.001


def test_connector_slower_than_local_hdfs_read():
    """The Fig. 2 mechanism in miniature: a block resident on the local
    datanode beats the same bytes pulled through the connector."""
    env, cluster, nodes, pfs, connector = make_world()
    data = payload(100, seed=4)

    hdfs = HDFS(env, cluster.network, block_size=100, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    hdfs.store_file_sync("/native", data)
    block = hdfs.namenode.get_block_locations("/native")[0]
    local = next(n for n in nodes if n.name == block.locations[0])

    t0 = env.now
    run(env, hdfs.client(local).read_block(block))
    t_native = env.now - t0

    pfs.store_file("/unified", data)
    # Same aggregate disk bandwidth would let striping win at micro scale;
    # the mechanism under test is the per-RPC lock + chopping overhead.
    chopped = PFSConnector(pfs, block_size=100, rpc_size=10,
                           lock_latency=0.02)
    client = chopped.client(local)
    t1 = env.now
    run(env, client.read("/unified"))
    t_connector = env.now - t1
    assert t_connector > t_native


def test_connector_exists_and_listdir():
    env, _cluster, nodes, pfs, connector = make_world()
    pfs.store_file("/dir/a", b"1")
    client = connector.client(nodes[0])
    assert run(env, client.exists("/dir/a"))
    assert run(env, client.listdir("/dir")) == ["/dir/a"]
