"""Tests for graceful datanode decommissioning."""

import numpy as np
import pytest

from repro.hdfs import HDFSError

from tests.hdfs.conftest import run, world  # noqa: F401 (fixture)


def payload(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


def test_decommission_moves_blocks_and_preserves_data(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    data = payload(800)  # 8 blocks, 2 per node
    hdfs.store_file_sync("/f", data)
    victim = nodes[1].name
    before = hdfs.datanode(victim).n_blocks
    assert before > 0

    moved = run(env, hdfs.decommission(victim))
    assert moved == before
    assert hdfs.datanode(victim).n_blocks == 0
    assert victim not in hdfs.namenode.datanodes
    # Every block has a live location, and the data is intact.
    for block in hdfs.namenode.get_block_locations("/f"):
        assert victim not in block.locations
    assert hdfs.read_file_sync("/f") == data
    got = run(env, hdfs.client(nodes[0]).read("/f"))
    assert got == data


def test_decommission_takes_time(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    hdfs.store_file_sync("/f", payload(400))
    t0 = env.now
    run(env, hdfs.decommission(nodes[0].name))
    assert env.now > t0


def test_decommission_balances_targets(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    hdfs.store_file_sync("/f", payload(1600))  # 16 blocks, 4 per node
    run(env, hdfs.decommission(nodes[2].name))
    counts = [hdfs.datanode(n.name).n_blocks
              for n in nodes if n.name != nodes[2].name]
    # 16 blocks over 3 survivors: 5-6 each, not all piled on one.
    assert max(counts) - min(counts) <= 1


def test_decommissioned_node_excluded_from_new_writes(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    hdfs.store_file_sync("/seed", payload(100))
    run(env, hdfs.decommission(nodes[3].name))
    run(env, hdfs.client(nodes[0]).write("/new", payload(400, seed=2)))
    for block in hdfs.namenode.get_block_locations("/new"):
        assert nodes[3].name not in block.locations


def test_decommission_unknown_node_raises(world):  # noqa: F811
    env, _cluster, hdfs, _nodes = world

    def proc():
        yield from hdfs.decommission("ghost")

    with pytest.raises(HDFSError):
        run(env, proc())


def test_decommission_last_node_fails(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    hdfs.store_file_sync("/f", payload(100))
    # Drain all but the block holder, then try to drain it too.
    block = hdfs.namenode.get_block_locations("/f")[0]
    holder = block.locations[0]
    for node in nodes:
        if node.name != holder:
            run(env, hdfs.decommission(node.name))

    def proc():
        yield from hdfs.decommission(holder)

    with pytest.raises(HDFSError, match="no live target"):
        run(env, proc())
