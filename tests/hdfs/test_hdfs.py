"""Tests for NameNode, DataNode, DFSClient, and virtual blocks."""

import numpy as np
import pytest

from repro.hdfs import HDFSError, VirtualBlock

from tests.hdfs.conftest import run


def payload(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


# ---------------------------------------------------------------- namenode
def test_namespace_create_lookup_delete(world):
    _env, _cluster, hdfs, _nodes = world
    nn = hdfs.namenode
    entry = nn.create_file("/data/file")
    assert nn.lookup("/data/file") is entry
    assert nn.exists("data/file")
    nn.delete("/data/file")
    assert not nn.exists("/data/file")
    with pytest.raises(HDFSError):
        nn.lookup("/data/file")


def test_duplicate_create_rejected(world):
    _env, _cluster, hdfs, _nodes = world
    hdfs.namenode.create_file("/f")
    with pytest.raises(HDFSError):
        hdfs.namenode.create_file("/f")


def test_listdir(world):
    _env, _cluster, hdfs, _nodes = world
    hdfs.store_file_sync("/dir/a", b"1")
    hdfs.store_file_sync("/dir/b", b"2")
    hdfs.store_file_sync("/dir/deep/c", b"3")
    assert hdfs.namenode.listdir("/dir") == ["/dir/a", "/dir/b"]


def test_block_placement_prefers_writer(world):
    _env, _cluster, hdfs, _nodes = world
    targets = hdfs.namenode.choose_targets("n2", 2)
    assert targets[0] == "n2"
    assert len(set(targets)) == 2


def test_block_placement_caps_at_cluster_size(world):
    _env, _cluster, hdfs, _nodes = world
    targets = hdfs.namenode.choose_targets(None, 10)
    assert sorted(targets) == ["n0", "n1", "n2", "n3"]


def test_add_block_validates_length(world):
    _env, _cluster, hdfs, _nodes = world
    hdfs.namenode.create_file("/f")  # block_size=100
    with pytest.raises(HDFSError):
        hdfs.namenode.add_block("/f", 101)


def test_incomplete_file_has_no_locations(world):
    _env, _cluster, hdfs, _nodes = world
    hdfs.namenode.create_file("/f")
    with pytest.raises(HDFSError):
        hdfs.namenode.get_block_locations("/f")


# ----------------------------------------------------------- write / read
def test_write_read_roundtrip(world):
    env, _cluster, hdfs, nodes = world
    data = payload(437)
    client = hdfs.client(nodes[0])

    def proc():
        yield env.process(client.write("/f", data))
        got = yield env.process(hdfs.client(nodes[1]).read("/f"))
        return got

    assert run(env, proc()) == data


def test_write_splits_into_blocks(world):
    env, _cluster, hdfs, nodes = world
    client = hdfs.client(nodes[0])
    run(env, client.write("/f", payload(250)))
    blocks = hdfs.namenode.get_block_locations("/f")
    assert [b.length for b in blocks] == [100, 100, 50]


def test_write_first_replica_local(world):
    env, _cluster, hdfs, nodes = world
    client = hdfs.client(nodes[2])
    run(env, client.write("/f", payload(100)))
    blocks = hdfs.namenode.get_block_locations("/f")
    assert blocks[0].locations[0] == "n2"
    assert hdfs.datanode("n2").has_block(blocks[0].block_id)


def test_replication_pipeline_stores_all_copies(world):
    env, _cluster, hdfs, nodes = world
    client = hdfs.client(nodes[0])
    run(env, client.write("/f", payload(100), replication=3))
    block = hdfs.namenode.get_block_locations("/f")[0]
    assert len(block.locations) == 3
    for name in block.locations:
        assert hdfs.datanode(name).has_block(block.block_id)


def test_local_read_is_faster_than_remote(world):
    env, _cluster, hdfs, nodes = world
    hdfs.store_file_sync("/f", payload(100))
    block = hdfs.namenode.get_block_locations("/f")[0]
    holder = block.locations[0]
    local_node = next(n for n in nodes if n.name == holder)
    remote_node = next(n for n in nodes if n.name != holder)

    env_local = env  # reuse world's env for the local read
    t0 = env_local.now
    run(env_local, hdfs.client(local_node).read_block(block))
    local_time = env_local.now - t0

    t1 = env_local.now
    run(env_local, hdfs.client(remote_node).read_block(block))
    remote_time = env_local.now - t1
    assert local_time < remote_time


def test_read_block_subrange(world):
    env, _cluster, hdfs, nodes = world
    data = payload(100)
    hdfs.store_file_sync("/f", data)
    block = hdfs.namenode.get_block_locations("/f")[0]
    got = run(env, hdfs.client(nodes[0]).read_block(block, 10, 20))
    assert got == data[10:30]


def test_store_file_sync_balances_blocks(world):
    _env, _cluster, hdfs, _nodes = world
    hdfs.store_file_sync("/f", payload(800))  # 8 blocks over 4 nodes
    counts = {dn.name: dn.n_blocks for dn in hdfs.datanodes}
    assert all(c == 2 for c in counts.values())


def test_read_file_sync_matches(world):
    _env, _cluster, hdfs, _nodes = world
    data = payload(555, seed=9)
    hdfs.store_file_sync("/f", data)
    assert hdfs.read_file_sync("/f") == data


# ------------------------------------------------------------ virtual files
def test_virtual_file_creation(world):
    _env, _cluster, hdfs, _nodes = world
    vbs = [
        VirtualBlock(source_path="/pfs/plot.nc", offset=0, length=500),
        VirtualBlock(source_path="/pfs/plot.nc", offset=500, length=300),
    ]
    entry = hdfs.namenode.create_virtual_file("/mirror/plot.nc/var", vbs)
    assert entry.is_virtual
    assert entry.size == 800
    blocks = hdfs.namenode.get_block_locations("/mirror/plot.nc/var")
    assert all(b.is_virtual and b.locations == [] for b in blocks)


def test_virtual_block_read_via_dfsclient_rejected(world):
    env, _cluster, hdfs, nodes = world
    hdfs.namenode.create_virtual_file(
        "/v", [VirtualBlock(source_path="/pfs/x", length=10)])
    block = hdfs.namenode.get_block_locations("/v")[0]

    def proc():
        yield from hdfs.client(nodes[0]).read_block(block)

    with pytest.raises(HDFSError):
        run(env, proc())


def test_virtual_file_sync_read_rejected(world):
    _env, _cluster, hdfs, _nodes = world
    hdfs.namenode.create_virtual_file(
        "/v", [VirtualBlock(source_path="/pfs/x", length=10)])
    with pytest.raises(HDFSError):
        hdfs.read_file_sync("/v")
