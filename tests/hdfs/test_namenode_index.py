"""O(1) NameNode membership index (PR-7 cluster-lookup satellite)."""

import pytest

from repro.hdfs.namenode import HDFSError, NameNode
from repro.sim import Environment


@pytest.fixture
def namenode():
    return NameNode(Environment())


def test_has_datanode_tracks_registration(namenode):
    assert not namenode.has_datanode("dn0")
    namenode.register_datanode("dn0")
    assert namenode.has_datanode("dn0")
    assert not namenode.has_datanode("dn1")


def test_duplicate_registration_rejected(namenode):
    namenode.register_datanode("dn0")
    with pytest.raises(HDFSError):
        namenode.register_datanode("dn0")
    # the failed re-registration must not corrupt either index
    assert namenode.datanodes == ["dn0"]
    assert namenode.has_datanode("dn0")


def test_unregister_updates_both_indexes(namenode):
    for i in range(4):
        namenode.register_datanode(f"dn{i}")
    namenode.unregister_datanode("dn2")
    assert not namenode.has_datanode("dn2")
    assert namenode.datanodes == ["dn0", "dn1", "dn3"]
    with pytest.raises(HDFSError):
        namenode.unregister_datanode("dn2")


def test_reregistration_after_unregister(namenode):
    namenode.register_datanode("dn0")
    namenode.unregister_datanode("dn0")
    namenode.register_datanode("dn0")  # must not raise
    assert namenode.has_datanode("dn0")
    assert namenode.datanodes == ["dn0"]


def test_placement_order_unchanged_by_index(namenode):
    """The set is a mirror: round-robin placement still follows the
    registration list, so adding the index cannot move any replica."""
    for i in range(3):
        namenode.register_datanode(f"dn{i}")
    targets = namenode.choose_targets(writer="dn1", replication=3)
    assert targets[0] == "dn1"  # locality-first, straight off the index
    assert sorted(targets) == ["dn0", "dn1", "dn2"]
