"""Shared fixtures for the unified data plane tests.

The equivalence tests need *twin worlds*: two identically-constructed
simulations, one driving the legacy frozen read path, one the new
planner, whose event sequences must produce bit-identical timings.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, DiskSpec, LinkSpec, NodeSpec
from repro.hdfs import HDFS
from repro.pfs import PFS, PFSClient, StripeLayout
from repro.sim import Environment


def small_spec(disk_bw=1000.0, n_disks=1, nic_bw=10_000.0):
    return NodeSpec(
        cpus=4,
        memory=10**9,
        disks=tuple(DiskSpec(bandwidth=disk_bw, seek_latency=0.0)
                    for _ in range(n_disks)),
        nic=LinkSpec(bandwidth=nic_bw, latency=0.0),
    )


def make_pfs_world(stripe_size=100, stripe_count=4):
    """One compute node + MDS + 2 OSS x 2 OSTs; returns (env, pfs, client)."""
    env = Environment()
    cluster = Cluster(env)
    c0 = cluster.add_node("c0", small_spec(), role="compute")
    mds = cluster.add_node("mds", small_spec(), role="storage")
    oss0 = cluster.add_node("oss0", small_spec(n_disks=2), role="storage")
    oss1 = cluster.add_node("oss1", small_spec(n_disks=2), role="storage")
    pfs = PFS(env, cluster.network, mds, [oss0, oss1],
              default_layout=StripeLayout(stripe_size=stripe_size,
                                          stripe_count=stripe_count))
    return env, pfs, PFSClient(pfs, c0)


@pytest.fixture
def combined_world():
    """PFS + HDFS sharing one cluster (registry / protocol tests)."""
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(2)]
    mds = cluster.add_node("mds", small_spec(), role="storage")
    oss = cluster.add_node("oss", small_spec(n_disks=2), role="storage")
    pfs = PFS(env, cluster.network, mds, [oss],
              default_layout=StripeLayout(stripe_size=100, stripe_count=2))
    hdfs = HDFS(env, cluster.network, block_size=100, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    return env, cluster, pfs, hdfs, nodes


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def payload(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
