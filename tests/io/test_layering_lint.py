"""Layering lint: the data plane stays in repro.io + backend adapters.

AST-walks every module under ``src/repro`` and fails if code outside the
allowlisted layers imports storage internals (OST/OSS/MDS transfer
machinery, DataNode streams) or the raw fan-out primitive directly.
New backends go through :class:`repro.io.protocol.StorageClient` and the
:class:`repro.io.planner.ReadPlanner` — not a fourth private copy of the
read path. CI runs this as part of the test suite.
"""

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: packages allowed to touch storage internals: the unified data plane
#: itself, the two backend packages (adapters + servers), and the DES
#: substrate that defines the primitives.
ALLOWED_PREFIXES = (
    "repro.io",
    "repro.pfs",
    "repro.hdfs",
    "repro.sim",
)

#: modules whose contents are storage/fan-out internals
FORBIDDEN_MODULES = {
    "repro.pfs.server",
    "repro.hdfs.datanode",
    "repro.sim.pipeline",
}

#: internal names that must not be imported from repro packages outside
#: the allowlist, wherever they are re-exported from
FORBIDDEN_NAMES = {"OST", "OSS", "MDS", "DataNode", "bounded_fanout"}


def module_name(path: Path) -> str:
    rel = path.relative_to(SRC_ROOT.parent)
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def violations_in(path: Path) -> list[str]:
    module = module_name(path)
    if module.startswith(ALLOWED_PREFIXES):
        return []
    return violations_in_source(module, path.read_text())


def violations_in_source(module: str, source: str) -> list[str]:
    tree = ast.parse(source, filename=module)
    problems = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in FORBIDDEN_MODULES:
                    problems.append(
                        f"{module}:{node.lineno}: imports internal "
                        f"module {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or not node.module.startswith("repro"):
                continue
            if node.module in FORBIDDEN_MODULES:
                problems.append(
                    f"{module}:{node.lineno}: imports from internal "
                    f"module {node.module}")
                continue
            for alias in node.names:
                if alias.name in FORBIDDEN_NAMES:
                    problems.append(
                        f"{module}:{node.lineno}: imports internal name "
                        f"{alias.name!r} from {node.module}")
    return problems


def test_no_storage_internals_outside_data_plane():
    problems = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        problems.extend(violations_in(path))
    assert not problems, (
        "storage internals reached from outside repro.io + backend "
        "adapters; route through StorageClient / ReadPlanner instead:\n"
        + "\n".join(problems))


def test_lint_catches_violations():
    """The lint itself works: synthetic offenders are flagged."""
    assert violations_in_source(
        "repro.core.offender", "from repro.pfs.server import OST\n")
    assert violations_in_source(
        "repro.mapreduce.offender", "import repro.hdfs.datanode\n")
    assert violations_in_source(
        "repro.sparklike.offender",
        "from repro.sim import bounded_fanout\n")
    assert not violations_in_source(
        "repro.core.fine", "from repro.io import ReadPlanner\n")
