"""Layering lint: the data plane stays in repro.io + backend adapters,
and observability internals stay behind the repro.obs facade.

AST-walks every module under ``src/repro`` and fails if code outside the
allowlisted layers imports guarded internals:

- **storage**: OST/OSS/MDS transfer machinery, DataNode streams, the
  raw fan-out primitive. New backends go through
  :class:`repro.io.protocol.StorageClient` and the
  :class:`repro.io.planner.ReadPlanner` — not a fourth private copy of
  the read path.
- **obs**: the columnar recording core (``repro.obs.columnar``) and the
  frozen v1 recorders (``repro.obs._legacy``). Instrumented packages
  record through the :class:`repro.obs.Tracer` / metrics facade; only
  the obs package itself (and the bench harness that measures both
  recorders) touches the storage layout.

CI runs this as part of the test suite.
"""

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: each rule: packages allowed to touch the internals, the internal
#: modules, and internal names that must not be imported from repro
#: packages elsewhere (wherever they are re-exported from)
RULES = (
    {
        "label": "storage internals",
        # the unified data plane, the two backend packages
        # (adapters + servers), and the DES substrate that defines
        # the primitives
        "allowed": ("repro.io", "repro.pfs", "repro.hdfs", "repro.sim"),
        "modules": {
            "repro.pfs.server",
            "repro.hdfs.datanode",
            "repro.sim.pipeline",
        },
        "names": {"OST", "OSS", "MDS", "DataNode", "bounded_fanout"},
    },
    {
        "label": "obs internals",
        # the obs package itself plus the bench harness that measures
        # the v1-vs-v2 recorders head to head
        "allowed": ("repro.obs", "repro.bench"),
        "modules": {
            "repro.obs.columnar",
            "repro.obs._legacy",
        },
        "names": {"ColumnarLog", "LegacyTracer", "LegacyMonitor"},
    },
    {
        "label": "sparklike storage isolation",
        # the lazy engine reaches storage only through the repro.io
        # plane (registry/planner) and runtime accessors — never the
        # backend packages or repro.core directly; the frozen v1 copy
        # keeps its historical imports
        "applies": ("repro.sparklike",),
        "exempt": ("repro.sparklike._legacy",),
        "banned_prefixes": ("repro.hdfs", "repro.pfs", "repro.core"),
    },
    {
        "label": "frozen sparklike v1 engine",
        # only the twin-world tests (outside src) and the
        # engine-vs-engine bench may resurrect the eager engine
        "allowed": ("repro.sparklike", "repro.bench"),
        "modules": {"repro.sparklike._legacy"},
        "names": {"LegacyContext", "LegacyRDD"},
    },
    {
        "label": "rlang storage isolation",
        # the SQL planner/session reach storage only through the
        # repro.io plane (registry/clients) — never the backend
        # packages or repro.core directly, so scan accounting cannot
        # fork a private read path
        "applies": ("repro.rlang",),
        "banned_prefixes": ("repro.hdfs", "repro.pfs", "repro.core"),
    },
    {
        "label": "campaign workspace internals",
        # the workspace layout (statepoint.json / result.json /
        # provenance files) is the campaign engine's private contract;
        # everything else goes through the repro.campaign facade (the
        # benchmark harness, outside src, drives it the same way)
        "allowed": ("repro.campaign",),
        "modules": {"repro.campaign.workspace"},
        "names": {"Workspace", "PointRecord", "code_fingerprint"},
    },
    {
        "label": "campaign process isolation",
        # the campaign driver ships plain parameters across the process
        # boundary — it must never hold simulation objects itself, so
        # no Environment/node/client can leak into a pickled state
        # point; workers (repro.bench.campaigns) build their own world
        "applies": ("repro.campaign",),
        "banned_prefixes": ("repro.sim", "repro.hdfs", "repro.pfs",
                            "repro.core", "repro.mapreduce"),
    },
    {
        "label": "frozen sqldf evaluator",
        # only the twin-world tests (outside src) and the bench may
        # resurrect the eager evaluator
        "allowed": ("repro.rlang", "repro.bench"),
        "modules": {"repro.rlang._legacy"},
        "names": {"legacy_sqldf"},
    },
)


def _in_prefixes(module: str, prefixes) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in prefixes)


def module_name(path: Path) -> str:
    rel = path.relative_to(SRC_ROOT.parent)
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def violations_in(path: Path) -> list[str]:
    return violations_in_source(module_name(path), path.read_text())


def _rule_active(rule: dict, module: str) -> bool:
    if "applies" in rule:
        # scoped rule: constrains imports *made by* a package
        return (module.startswith(rule["applies"])
                and not _in_prefixes(module, rule.get("exempt", ())))
    # allowlist rule: constrains who may import the internals
    return not module.startswith(rule["allowed"])


def violations_in_source(module: str, source: str) -> list[str]:
    rules = [rule for rule in RULES if _rule_active(rule, module)]
    if not rules:
        return []
    tree = ast.parse(source, filename=module)
    problems = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                for rule in rules:
                    if alias.name in rule.get("modules", ()):
                        problems.append(
                            f"{module}:{node.lineno}: imports internal "
                            f"module {alias.name} ({rule['label']})")
                    elif _in_prefixes(alias.name,
                                      rule.get("banned_prefixes", ())):
                        problems.append(
                            f"{module}:{node.lineno}: imports "
                            f"{alias.name} ({rule['label']})")
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or not node.module.startswith("repro"):
                continue
            for rule in rules:
                if node.module in rule.get("modules", ()):
                    problems.append(
                        f"{module}:{node.lineno}: imports from internal "
                        f"module {node.module} ({rule['label']})")
                    continue
                if _in_prefixes(node.module,
                                rule.get("banned_prefixes", ())):
                    problems.append(
                        f"{module}:{node.lineno}: imports from "
                        f"{node.module} ({rule['label']})")
                    continue
                for alias in node.names:
                    if alias.name in rule.get("names", ()):
                        problems.append(
                            f"{module}:{node.lineno}: imports internal "
                            f"name {alias.name!r} from {node.module} "
                            f"({rule['label']})")
    return problems


def test_no_guarded_internals_outside_their_layer():
    problems = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        problems.extend(violations_in(path))
    assert not problems, (
        "guarded internals reached from outside their layer; route "
        "through StorageClient / ReadPlanner / the repro.obs facade "
        "instead:\n" + "\n".join(problems))


def test_lint_catches_violations():
    """The lint itself works: synthetic offenders are flagged."""
    assert violations_in_source(
        "repro.core.offender", "from repro.pfs.server import OST\n")
    assert violations_in_source(
        "repro.mapreduce.offender", "import repro.hdfs.datanode\n")
    assert violations_in_source(
        "repro.sparklike.offender",
        "from repro.sim import bounded_fanout\n")
    assert not violations_in_source(
        "repro.core.fine", "from repro.io import ReadPlanner\n")


def test_lint_catches_obs_violations():
    """Seeded offenders against the obs rule are flagged, and the
    legitimate consumers are not."""
    # instrumented packages must not reach into the columnar core
    assert violations_in_source(
        "repro.mapreduce.offender",
        "from repro.obs.columnar import ColumnarLog\n")
    assert violations_in_source(
        "repro.io.offender", "import repro.obs.columnar\n")
    # ...nor resurrect the frozen v1 recorders
    assert violations_in_source(
        "repro.sparklike.offender",
        "from repro.obs._legacy import LegacyTracer\n")
    assert violations_in_source(
        "repro.core.offender",
        "from repro.obs import LegacyMonitor\n")
    # the facade is the supported surface
    assert not violations_in_source(
        "repro.mapreduce.fine",
        "from repro.obs import Tracer, metrics_of\n")
    # obs itself and the measuring bench harness are allowlisted
    assert not violations_in_source(
        "repro.obs.trace",
        "from repro.obs.columnar import ColumnarLog\n")
    assert not violations_in_source(
        "repro.bench.obsbench",
        "from repro.obs._legacy import LegacyTracer\n")


def test_lint_sparklike_storage_isolation():
    """The lazy engine reaches storage only through repro.io: direct
    backend/core imports from inside repro.sparklike are flagged."""
    assert violations_in_source(
        "repro.sparklike.scheduler", "import repro.hdfs\n")
    assert violations_in_source(
        "repro.sparklike.context",
        "from repro.hdfs.client import HDFSClient\n")
    assert violations_in_source(
        "repro.sparklike.rdd", "from repro.pfs import PFS\n")
    assert violations_in_source(
        "repro.sparklike.context",
        "from repro.core.reader import PFSReader\n")
    # the sanctioned surfaces are fine
    assert not violations_in_source(
        "repro.sparklike.context",
        "from repro.io.registry import StorageRegistry\n")
    assert not violations_in_source(
        "repro.sparklike.scheduler",
        "from repro.mapreduce.task import MapOutputFeed\n"
        "from repro.sim import FanoutWindow\n")
    # the frozen v1 copy keeps its historical imports
    assert not violations_in_source(
        "repro.sparklike._legacy",
        "from repro.core.reader import PFSReader\n")
    # the rule constrains sparklike only, not other engines
    assert not violations_in_source(
        "repro.mapreduce.runtime", "from repro.hdfs import HDFS\n")


def test_lint_rlang_storage_isolation():
    """The SQL layer reaches storage only through repro.io: direct
    backend/core imports from inside repro.rlang are flagged."""
    assert violations_in_source(
        "repro.rlang.session", "from repro.pfs.client import PFSClient\n")
    assert violations_in_source(
        "repro.rlang.session", "import repro.hdfs\n")
    assert violations_in_source(
        "repro.rlang.session",
        "from repro.core.reader import PFSReader\n")
    # the sanctioned surfaces are fine
    assert not violations_in_source(
        "repro.rlang.session",
        "from repro.io.registry import StorageRegistry\n"
        "from repro.formats.container import read_header\n"
        "from repro.obs.trace import tracer_of\n")
    # the rule constrains rlang only
    assert not violations_in_source(
        "repro.workloads.pipeline", "from repro.core import SciDP\n")


def test_lint_frozen_sqldf_evaluator_quarantined():
    """Only rlang itself and the bench may import the frozen eager
    evaluator."""
    assert violations_in_source(
        "repro.workloads.offender",
        "from repro.rlang._legacy import legacy_sqldf\n")
    assert violations_in_source(
        "repro.core.offender", "import repro.rlang._legacy\n")
    assert violations_in_source(
        "repro.mapreduce.offender",
        "from repro.rlang import legacy_sqldf\n")
    assert not violations_in_source(
        "repro.rlang.session",
        "from repro.rlang._legacy import legacy_sqldf\n")
    assert not violations_in_source(
        "repro.bench.sqlbench",
        "from repro.rlang._legacy import legacy_sqldf\n")


def test_lint_campaign_workspace_quarantined():
    """Only the campaign package may touch the workspace layout; other
    layers go through the repro.campaign facade."""
    assert violations_in_source(
        "repro.bench.offender",
        "from repro.campaign.workspace import Workspace\n")
    assert violations_in_source(
        "repro.obs.offender", "import repro.campaign.workspace\n")
    assert violations_in_source(
        "repro.io.offender",
        "from repro.campaign import code_fingerprint\n")
    # the campaign package itself owns the layout
    assert not violations_in_source(
        "repro.campaign.runner",
        "from repro.campaign.workspace import Workspace\n")


def test_lint_campaign_process_isolation():
    """The campaign driver must stay free of simulation layers — a
    captured Environment cannot cross the process boundary."""
    assert violations_in_source(
        "repro.campaign.runner",
        "from repro.sim.engine import Environment\n")
    assert violations_in_source(
        "repro.campaign.registry", "import repro.hdfs\n")
    assert violations_in_source(
        "repro.campaign.aggregate",
        "from repro.core import SciDP\n")
    # the sanctioned surfaces: reporting and the worker module, which
    # lives in repro.bench and builds worlds inside the child process
    assert not violations_in_source(
        "repro.campaign.aggregate",
        "from repro.bench.reporting import format_table\n")
    assert not violations_in_source(
        "repro.bench.campaigns",
        "from repro.sim.engine import Environment\n")


def test_lint_frozen_legacy_engine_quarantined():
    """Only sparklike itself and the bench may import the frozen v1
    engine."""
    assert violations_in_source(
        "repro.core.offender",
        "from repro.sparklike._legacy import LegacyContext\n")
    assert violations_in_source(
        "repro.mapreduce.offender", "import repro.sparklike._legacy\n")
    assert violations_in_source(
        "repro.workloads.offender",
        "from repro.sparklike import LegacyRDD\n")
    assert not violations_in_source(
        "repro.bench.sparkbench",
        "from repro.sparklike._legacy import LegacyContext\n")
