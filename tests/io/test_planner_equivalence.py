"""ReadPlanner vs the frozen legacy read paths.

Twin-world equivalence: identical simulations drive the same randomized
workload through the new planner and through the pre-refactor copies
preserved in :mod:`repro.io._legacy`. The planner must reproduce the
legacy event sequences exactly — simulated completion times match to
1e-9 and the byte streams are identical.
"""

import random

import pytest

from repro.io._legacy import (
    LegacyRangeReader,
    legacy_chop,
    legacy_coalesce_extents,
    legacy_read_extents,
)
from repro.io.planner import ReadPlanner, chop_range, coalesce_extents
from repro.sim.cache import ReadAheadCache

from tests.io.conftest import make_pfs_world, payload, run


# ------------------------------------------------------------ pure helpers
@pytest.mark.parametrize("seed", range(5))
def test_chop_matches_legacy(seed):
    rng = random.Random(seed)
    for _ in range(50):
        offset = rng.randrange(0, 10_000)
        length = rng.randrange(1, 5_000)
        granularity = rng.choice([None, 1, 7, 64, 1024])
        assert chop_range(offset, length, granularity) \
            == legacy_chop(offset, length, granularity)


@pytest.mark.parametrize("seed", range(5))
def test_coalesce_matches_legacy(seed):
    rng = random.Random(100 + seed)
    _env, pfs, _client = make_pfs_world(stripe_size=50, stripe_count=4)
    inode = pfs.store_file("/f", payload(5_000, seed=seed))
    extents = []
    for _ in range(30):
        off = rng.randrange(0, 4_900)
        extents.extend(inode.layout.map_range(
            off, rng.randrange(1, 5_000 - off)))
    rng.shuffle(extents)
    assert coalesce_extents(list(extents)) \
        == legacy_coalesce_extents(list(extents))


# ----------------------------------------------------- read_extents timing
def random_extent_workload(rng, inode, size):
    """A shuffled list of stripe-mapped extents over disjoint subranges.

    Callers (MPI-IO aggregation domains, virtual-block reads) only ever
    pass non-overlapping ranges, so the workload honours that invariant.
    """
    cuts = sorted(rng.sample(range(1, size), rng.randrange(2, 12)))
    bounds = list(zip([0, *cuts], [*cuts, size]))
    extents = []
    for lo, hi in rng.sample(bounds, rng.randrange(1, len(bounds) + 1)):
        extents.extend(inode.layout.map_range(lo, hi - lo))
    rng.shuffle(extents)
    return extents


@pytest.mark.parametrize("seed", [1, 7, 42, 20180710])
@pytest.mark.parametrize("window", [None, 0, 1, 2, 3])
def test_read_extents_matches_legacy(seed, window):
    """New PFSClient.read_extents ≡ frozen legacy copy: bytes + clock."""
    size = 3_000
    rng = random.Random(seed)
    ext_template = None

    def drive(use_legacy):
        nonlocal ext_template
        env, pfs, client = make_pfs_world(stripe_size=64, stripe_count=4)
        inode = pfs.store_file("/f", payload(size, seed=seed))
        if ext_template is None:
            ext_template = random_extent_workload(rng, inode, size)
        extents = list(ext_template)
        if use_legacy:
            data = run(env, legacy_read_extents(
                client, inode, extents, max_inflight=window))
        else:
            data = run(env, client.read_extents(
                inode, extents, max_inflight=window))
        return data, env.now

    old_data, old_now = drive(use_legacy=True)
    new_data, new_now = drive(use_legacy=False)
    assert new_data == old_data
    assert new_now == pytest.approx(old_now, abs=1e-9)


@pytest.mark.parametrize("seed", [3, 11])
def test_concurrent_read_extents_matches_legacy(seed):
    """Several overlapping read_extents calls racing on the same OSTs."""
    size = 2_000
    rng = random.Random(seed)
    workloads = None

    def drive(use_legacy):
        nonlocal workloads
        env, pfs, client = make_pfs_world(stripe_size=50, stripe_count=4)
        inode = pfs.store_file("/f", payload(size, seed=seed))
        if workloads is None:
            workloads = [
                (random_extent_workload(rng, inode, size),
                 rng.choice([None, 0, 1, 2]))
                for _ in range(4)
            ]
        finishes = []

        def one(extents, window):
            if use_legacy:
                data = yield env.process(legacy_read_extents(
                    client, inode, list(extents), max_inflight=window))
            else:
                data = yield env.process(client.read_extents(
                    inode, list(extents), max_inflight=window))
            finishes.append((env.now, len(data)))

        for extents, window in workloads:
            env.process(one(extents, window))
        env.run()
        return finishes

    old = drive(use_legacy=True)
    new = drive(use_legacy=False)
    assert len(new) == len(old)
    for (t_new, n_new), (t_old, n_old) in zip(new, old):
        assert n_new == n_old
        assert t_new == pytest.approx(t_old, abs=1e-9)


# ------------------------------------------------------ fetch_range timing
@pytest.mark.parametrize("seed", [2, 13, 99])
@pytest.mark.parametrize("granularity,window", [
    (None, 1), (64, 1), (64, 3), (64, 0), (200, 2),
])
def test_fetch_range_matches_legacy(seed, granularity, window):
    """planner.fetch_range ≡ frozen PFSReader chop/fetch machinery."""
    size = 1_500
    rng = random.Random(seed)
    ranges = [(rng.randrange(0, size - 1),) for _ in range(5)]
    ranges = [(off, rng.randrange(1, size - off)) for (off,) in ranges]

    def drive(use_legacy):
        env, pfs, client = make_pfs_world(stripe_size=64, stripe_count=4)
        pfs.store_file("/f", payload(size, seed=seed))
        if use_legacy:
            reader = LegacyRangeReader(
                client, granularity=granularity,
                request_overhead=0.0008, max_inflight=window)
            fetchers = [reader.fetch_range("/f", off, n)
                        for off, n in ranges]
        else:
            planner = ReadPlanner(
                env, scheme="scidp", granularity=granularity,
                request_overhead=0.0008, max_inflight=window)
            fetch = lambda pos, n: client.read("/f", pos, n)  # noqa: E731
            fetchers = [planner.fetch_range("/f", off, n, fetch)
                        for off, n in ranges]
        outs = []
        for gen in fetchers:
            outs.append(run(env, gen))
        return outs, env.now

    old_outs, old_now = drive(use_legacy=True)
    new_outs, new_now = drive(use_legacy=False)
    assert new_outs == old_outs
    assert new_now == pytest.approx(old_now, abs=1e-9)


@pytest.mark.parametrize("window", [1, 2])
def test_fetch_range_with_cache_matches_legacy(window):
    """Join-in-flight cache protocol: concurrent identical ranges share
    one fetch in both implementations, with identical timing."""
    size = 1_000

    def drive(use_legacy):
        env, pfs, client = make_pfs_world(stripe_size=64, stripe_count=4)
        pfs.store_file("/f", payload(size, seed=5))
        cache = ReadAheadCache(env, capacity_bytes=1 << 20)
        if use_legacy:
            reader = LegacyRangeReader(
                client, granularity=128, request_overhead=0.0008,
                max_inflight=window, cache=cache)
            make = reader.fetch_range
        else:
            planner = ReadPlanner(
                env, scheme="scidp", granularity=128,
                request_overhead=0.0008, max_inflight=window, cache=cache)
            make = lambda path, off, n: planner.fetch_range(  # noqa: E731
                path, off, n, lambda pos, m: client.read(path, pos, m))
        finishes = []

        def one(off, n):
            data = yield env.process(make("/f", off, n))
            finishes.append((env.now, len(data)))

        # Two racing identical reads (join-in-flight), then a re-read
        # after completion (cache hit), plus a disjoint range.
        env.process(one(0, 512))
        env.process(one(0, 512))
        env.process(one(512, 488))

        def late():
            yield env.timeout(10.0)
            yield env.process(one(0, 512))

        env.process(late())
        env.run()
        return finishes, cache.stats.hits, cache.stats.overlap_hits

    old, old_hits, old_overlaps = drive(use_legacy=True)
    new, new_hits, new_overlaps = drive(use_legacy=False)
    assert [(n, round(t, 9)) for t, n in new] \
        == [(n, round(t, 9)) for t, n in old]
    assert new_hits == old_hits
    assert new_overlaps == old_overlaps
