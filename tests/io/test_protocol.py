"""StorageClient protocol conformance and the unified read_block surface."""

import inspect

from repro.hdfs.block import BlockInfo, VirtualBlock
from repro.hdfs.connector import PFSConnector
from repro.io import READ_BLOCK_KWARGS, StorageClient, StorageFacade

from tests.io.conftest import combined_world, payload, run  # noqa: F401


def all_clients(pfs, hdfs, node):
    """One node-bound client per registered backend kind."""
    connector = PFSConnector(pfs, block_size=100)
    return {
        "pfs": pfs.client(node),
        "hdfs": hdfs.client(node),
        "connector": connector.client(node),
    }, connector


def test_every_backend_satisfies_storage_client(combined_world):
    _env, _cluster, pfs, hdfs, nodes = combined_world
    clients, _connector = all_clients(pfs, hdfs, nodes[0])
    for name, client in clients.items():
        assert isinstance(client, StorageClient), name


def test_facades_satisfy_storage_facade(combined_world):
    _env, _cluster, pfs, hdfs, _nodes = combined_world
    for facade in (pfs, hdfs, PFSConnector(pfs)):
        assert isinstance(facade, StorageFacade), type(facade).__name__


def test_read_block_signatures_are_uniform(combined_world):
    """Satellite: every backend's read_block takes the same kwargs."""
    _env, _cluster, pfs, hdfs, nodes = combined_world
    clients, _connector = all_clients(pfs, hdfs, nodes[0])
    for name, client in clients.items():
        params = inspect.signature(client.read_block).parameters
        for kwarg in READ_BLOCK_KWARGS:
            assert kwarg in params, f"{name}.read_block missing {kwarg!r}"


def test_read_block_kwargs_accepted_by_all_backends(combined_world):
    """The same read_block call shape works against every backend."""
    env, _cluster, pfs, hdfs, nodes = combined_world
    data = payload(250)
    hdfs.store_file_sync("/h/file", data)
    pfs.store_file("/p/file", data)
    clients, connector = all_clients(pfs, hdfs, nodes[0])

    hdfs_block = hdfs.namenode.get_block_locations("/h/file")[0]
    conn_block = connector.get_blocks("/p/file")[0]
    virt_block = BlockInfo(
        block_id=-100, length=100,
        virtual=VirtualBlock(source_path="/p/file", offset=0, length=100))
    blocks = {"pfs": virt_block, "hdfs": hdfs_block,
              "connector": conn_block}

    for name, client in clients.items():
        got = run(env, client.read_block(
            blocks[name], offset=10, length=50, max_inflight=2))
        assert got == data[10:60], name


def test_metadata_surface_uniform(combined_world):
    """stat/listdir/exists/delete behave across backends."""
    env, _cluster, pfs, hdfs, nodes = combined_world
    hdfs.store_file_sync("/h/a", payload(40))
    pfs.store_file("/p/a", payload(40))
    clients, _connector = all_clients(pfs, hdfs, nodes[0])

    for name, client in clients.items():
        path = "/h/a" if name == "hdfs" else "/p/a"
        assert run(env, client.exists(path)) is True, name
        entry = run(env, client.stat(path))
        assert entry.size == 40, name
        listing = run(env, client.listdir(path.rsplit("/", 1)[0]))
        assert path in listing, name

    # delete through each namespace owner (connector shares the PFS one)
    run(env, clients["hdfs"].delete("/h/a"))
    assert run(env, clients["hdfs"].exists("/h/a")) is False
    run(env, clients["pfs"].delete("/p/a"))
    assert run(env, clients["pfs"].exists("/p/a")) is False


def test_read_extents_uniform(combined_world):
    """(offset, length) extent reads return identical bytes everywhere."""
    env, _cluster, pfs, hdfs, nodes = combined_world
    data = payload(300, seed=3)
    hdfs.store_file_sync("/h/x", data)
    pfs.store_file("/p/x", data)
    clients, _connector = all_clients(pfs, hdfs, nodes[0])
    ranges = [(5, 40), (120, 30), (250, 50)]
    expected = b"".join(data[o:o + n] for o, n in ranges)

    for name, client in clients.items():
        path = "/h/x" if name == "hdfs" else "/p/x"
        got = run(env, client.read_extents(path, ranges, max_inflight=2))
        assert got == expected, name
