"""Scheme registry: resolution, failure modes, scidp:// round-trips."""

import pytest

from repro.hdfs.connector import PFSConnector
from repro.io import (
    SchemeAlreadyRegisteredError,
    StorageRegistry,
    UnknownSchemeError,
    join_url,
    split_url,
)

from tests.io.conftest import combined_world, payload  # noqa: F401


# ------------------------------------------------------------- URL algebra
@pytest.mark.parametrize("url,expected", [
    ("pfs://data/a.nc", ("pfs", "/data/a.nc")),
    ("hdfs:///x", ("hdfs", "/x")),
    ("scidp://-3", ("scidp", "/-3")),
    ("/plain/path", ("", "/plain/path")),
    ("relative", ("", "relative")),
])
def test_split_url(url, expected):
    assert split_url(url) == expected


def test_join_url_round_trips():
    for url in ["pfs://data/a.nc", "hdfs://x", "/plain/path"]:
        scheme, path = split_url(url)
        assert split_url(join_url(scheme, path)) == (scheme, path)


# ------------------------------------------------------------ registration
def test_unknown_scheme_raises_clear_error():
    registry = StorageRegistry()
    with pytest.raises(UnknownSchemeError) as excinfo:
        registry.resolve("gluster://x")
    message = str(excinfo.value)
    assert "gluster" in message
    assert "known schemes" in message


def test_scheme_less_path_without_default_raises():
    registry = StorageRegistry()
    registry.register("pfs", object())
    with pytest.raises(UnknownSchemeError):
        registry.resolve("/no/scheme")


def test_scheme_less_path_uses_default_scheme():
    backend = object()
    registry = StorageRegistry(default_scheme="hdfs")
    registry.register("hdfs", backend)
    resolved, path = registry.resolve("/data/file")
    assert resolved is backend
    assert path == "/data/file"


def test_double_registration_rejected():
    registry = StorageRegistry()
    registry.register("pfs", object())
    with pytest.raises(SchemeAlreadyRegisteredError):
        registry.register("pfs", object())


def test_empty_scheme_rejected():
    with pytest.raises(ValueError):
        StorageRegistry().register("", object())


# -------------------------------------------------------------- resolution
def test_open_returns_node_bound_client(combined_world):
    env, _cluster, pfs, hdfs, nodes = combined_world
    registry = StorageRegistry()
    registry.register("pfs", pfs)
    registry.register("hdfs", hdfs)
    for url, backend in [("pfs://a/b", pfs), ("hdfs://a/b", hdfs)]:
        client, path = registry.open(url, nodes[0])
        assert client.node is nodes[0]
        assert client.env is env
        assert path == "/a/b"


def test_scidp_url_round_trips_connector_blocks(combined_world):
    """scidp://<block_id> resolves through PFSConnector.resolve_block."""
    _env, _cluster, pfs, _hdfs, _nodes = combined_world
    pfs.store_file("/data/big", payload(350))
    connector = PFSConnector(pfs, block_size=100)
    registry = StorageRegistry()
    registry.register("scidp", connector)
    blocks = connector.get_blocks("/data/big")
    assert len(blocks) == 4
    for i, block in enumerate(blocks):
        resolved = registry.resolve_virtual(f"scidp://{block.block_id}")
        assert resolved == connector.resolve_block(block.block_id)
        assert resolved == ("/data/big", i * 100)


def test_resolve_virtual_rejects_non_resolving_backend():
    registry = StorageRegistry()
    registry.register("pfs", object())  # no resolve_block
    with pytest.raises(UnknownSchemeError):
        registry.resolve_virtual("pfs://-1")


def test_resolve_virtual_rejects_non_numeric_id(combined_world):
    _env, _cluster, pfs, _hdfs, _nodes = combined_world
    registry = StorageRegistry()
    registry.register("scidp", PFSConnector(pfs))
    with pytest.raises(UnknownSchemeError):
        registry.resolve_virtual("scidp://not-a-block")
