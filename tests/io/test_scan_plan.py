"""The :class:`ScanPlan` pruned-scan shape and the planner's
skipped-bytes accounting (the ISSUE-9 pushdown plumbing)."""

import pytest

from repro.io import ScanPlan
from repro.io.planner import ReadPlanner
from repro.obs.metrics import attach_metrics, metrics_of
from repro.sim import Environment


def test_scan_plan_byte_accounting():
    plan = ScanPlan(pieces=((0, 100), (300, 50)),
                    skipped=((100, 200), (350, 25)))
    assert plan.n_requests == 2
    assert plan.total_bytes == 150
    assert plan.skipped_bytes == 225
    assert len(plan) == 2
    assert list(plan) == [(0, 100), (300, 50)]


def test_scan_plan_defaults_skip_nothing():
    plan = ScanPlan(pieces=((0, 10),))
    assert plan.skipped == ()
    assert plan.skipped_bytes == 0
    assert plan.granularity is None


def test_scan_plan_is_frozen():
    plan = ScanPlan(pieces=((0, 10),))
    with pytest.raises(AttributeError):
        plan.pieces = ()


def test_account_skipped_rolls_into_scheme_counters():
    env = Environment()
    attach_metrics(env)
    planner = ReadPlanner(env, scheme="pfs")
    planner.account_skipped(1234, chunks=3)
    planner.account_skipped(766)  # default: one chunk
    registry = metrics_of(env)
    assert registry.counter("io.read.pfs.skipped_bytes").value == 2000
    assert registry.counter("io.read.pfs.skipped_chunks").value == 4


def test_account_skipped_zero_bytes_counts_no_bytes():
    env = Environment()
    attach_metrics(env)
    planner = ReadPlanner(env, scheme="pfs")
    planner.account_skipped(0, chunks=2)
    registry = metrics_of(env)
    assert registry.counter("io.read.pfs.skipped_bytes").value == 0
    assert registry.counter("io.read.pfs.skipped_chunks").value == 2


def test_account_skipped_without_metrics_is_a_noop():
    env = Environment()  # no attach_metrics
    planner = ReadPlanner(env, scheme="pfs")
    planner.account_skipped(100, chunks=1)  # must not raise
    assert metrics_of(env) is None
