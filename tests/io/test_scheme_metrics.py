"""Per-scheme read accounting: planner counters → registry rows → report."""

from repro.hdfs.connector import PFSConnector
from repro.obs.metrics import attach_metrics
from repro.obs.report import render_report, validate_trace
from repro.obs.trace import write_chrome_trace

from tests.io.conftest import combined_world, payload, run  # noqa: F401


def rows_by_scheme(registry):
    return {row["scheme"]: row for row in registry.scheme_read_rows()}


def test_reads_tagged_by_scheme(combined_world):
    env, _cluster, pfs, hdfs, nodes = combined_world
    registry = attach_metrics(env)
    data = payload(250)
    hdfs.store_file_sync("/h/f", data)
    pfs.store_file("/p/f", data)
    connector = PFSConnector(pfs, block_size=100)

    assert run(env, hdfs.client(nodes[0]).read("/h/f")) == data
    assert run(env, pfs.client(nodes[0]).read("/p/f")) == data
    assert run(env, connector.client(nodes[0]).read("/p/f")) == data

    rows = rows_by_scheme(registry)
    assert rows["hdfs"]["bytes"] == 250
    assert rows["hdfs"]["requests"] == 3  # one per 100-byte block
    # pfs counts its own read plus the connector's PFS leg (layered
    # paths count at each layer they cross)
    assert rows["pfs"]["bytes"] == 500
    assert rows["connector"]["bytes"] == 250
    assert rows["connector"]["requests"] == 1  # 250 B < 1 MiB RPC size
    for row in rows.values():
        assert row["cache_hits"] == 0


def test_scheme_rows_survive_as_dict_and_empty_registry(combined_world):
    env, _cluster, _pfs, _hdfs, _nodes = combined_world
    registry = attach_metrics(env)
    assert registry.scheme_read_rows() == []
    registry.counter("io.read.pfs.bytes").inc(10)
    registry.counter("io.read.pfs.requests").inc(2)
    snapshot = registry.as_dict()
    assert snapshot["reads"] == [
        {"scheme": "pfs", "bytes": 10.0, "requests": 2.0,
         "cache_hits": 0.0}]
    # unrelated counters never leak into the read table
    registry.counter("io.read.malformed").inc()
    registry.counter("scidp.blocks").inc()
    assert len(registry.scheme_read_rows()) == 1


def test_report_renders_reads_by_scheme(tmp_path):
    trace = tmp_path / "trace.json"
    write_chrome_trace(str(trace), events=[], device_metrics=[
        {"run": "base", "device": "ost0", "bytes_moved": 1e6,
         "busy_seconds": 1.0, "utilization": 0.5, "mean_in_flight": 1.0},
        {"run": "base", "device": "io.read.pfs", "scheme": "pfs",
         "bytes_moved": 1e6, "read_requests": 4.0,
         "read_cache_hits": 1.0},
    ])
    assert validate_trace(str(trace)) == []
    report = render_report(str(trace))
    assert "reads by scheme" in report
    assert "pfs" in report
    assert "device utilisation" in report
    # the scheme row stays out of the device table
    assert "io.read.pfs" not in report.split("reads by scheme")[0]


# ---------------------------------------------------------- write accounting
def write_rows_by_scheme(registry):
    return {row["scheme"]: row for row in registry.scheme_write_rows()}


def test_writes_tagged_by_scheme(combined_world):
    env, _cluster, pfs, hdfs, nodes = combined_world
    registry = attach_metrics(env)
    data = payload(250)
    connector = PFSConnector(pfs, block_size=100)

    run(env, hdfs.client(nodes[0]).write("/h/f", data))
    run(env, pfs.client(nodes[0]).write("/p/f", data))
    run(env, connector.client(nodes[0]).write("/p/g", data))

    rows = write_rows_by_scheme(registry)
    assert rows["hdfs"]["bytes"] == 250
    assert rows["hdfs"]["requests"] == 3  # one per 100-byte block
    # pfs counts its own write plus the connector's PFS leg (layered
    # paths count at each layer they cross)
    assert rows["pfs"]["bytes"] == 500
    assert rows["connector"]["bytes"] == 250
    assert rows["connector"]["requests"] == 1  # 250 B < 1 MiB RPC size
    # the stored bytes really landed through each front door
    assert hdfs.read_file_sync("/h/f") == data
    assert pfs.read_file_sync("/p/f") == data
    assert pfs.read_file_sync("/p/g") == data


def test_scheme_write_rows_survive_as_dict_and_empty_registry(
        combined_world):
    env, _cluster, _pfs, _hdfs, _nodes = combined_world
    registry = attach_metrics(env)
    assert registry.scheme_write_rows() == []
    registry.counter("io.write.hdfs.bytes").inc(30)
    registry.counter("io.write.hdfs.requests").inc(3)
    snapshot = registry.as_dict()
    assert snapshot["writes"] == [
        {"scheme": "hdfs", "bytes": 30.0, "requests": 3.0}]
    # unrelated counters never leak into the write table
    registry.counter("io.write.malformed").inc()
    registry.counter("io.read.pfs.bytes").inc(5)
    assert len(registry.scheme_write_rows()) == 1


def test_trace_session_folds_write_rows(combined_world, tmp_path):
    """End-to-end: TraceSession → deviceMetrics rows → report table."""
    from repro.obs import TraceSession

    env, cluster, pfs, hdfs, nodes = combined_world
    session = TraceSession(str(tmp_path / "trace.json"))
    session.observe(env, "wtest", nodes=nodes, pfs=pfs, hdfs=hdfs,
                    network=cluster.network)
    run(env, hdfs.client(nodes[0]).write("/h/f", payload(200)))
    _events, devices = session.events()
    row = next(d for d in devices if d.get("write_scheme") == "hdfs")
    assert row["device"] == "io.write.hdfs"
    assert row["bytes_moved"] == 200
    assert row["write_requests"] == 2  # 200 B / 100 B blocks
    session.save()
    report = render_report(str(tmp_path / "trace.json"))
    assert "writes by scheme" in report
    # the write row stays out of the device table
    assert "io.write.hdfs" not in report.split("writes by scheme")[0]


def test_report_renders_writes_by_scheme(tmp_path):
    trace = tmp_path / "trace.json"
    write_chrome_trace(str(trace), events=[], device_metrics=[
        {"run": "base", "device": "ost0", "bytes_moved": 1e6,
         "busy_seconds": 1.0, "utilization": 0.5, "mean_in_flight": 1.0},
        {"run": "base", "device": "io.write.pfs", "write_scheme": "pfs",
         "bytes_moved": 2e6, "write_requests": 8.0},
    ])
    assert validate_trace(str(trace)) == []
    report = render_report(str(trace))
    assert "writes by scheme" in report
    assert "device utilisation" in report
    assert "io.write.pfs" not in report.split("writes by scheme")[0]
