"""Production writers vs the frozen legacy write paths.

The write-side twin of ``test_planner_equivalence``: at default knobs
(no packet pipelining, serial blocks, whole-extent stripe pushes) the
:class:`~repro.io.write.WritePlanner`-backed writers must reproduce the
pre-refactor event sequences exactly — simulated completion times match
to 1e-9, replica placements match, and the stored bytes are identical.
Non-default knobs are covered separately: they are behaviour changes,
gated by the write bench and its perf-smoke goldens.
"""

import random

import pytest

from repro.cluster import Cluster
from repro.hdfs import HDFS
from repro.io._legacy import (
    legacy_hdfs_write,
    legacy_pfs_write,
    legacy_write_at_all,
)
from repro.pfs import PFS, PFSClient, StripeLayout
from repro.pfs.mpiio import MPIFile
from repro.sim import Environment

from tests.io.conftest import make_pfs_world, payload, run, small_spec


def make_hdfs_world(replication=3, block_size=100, n_nodes=5):
    """Writer node + datanodes; returns (env, hdfs, client)."""
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(n_nodes)]
    hdfs = HDFS(env, cluster.network, block_size=block_size,
                replication=replication)
    for node in nodes:
        hdfs.add_datanode(node)
    return env, hdfs, hdfs.client(nodes[0])


# ------------------------------------------------------------- HDFS writes
@pytest.mark.parametrize("replication", [1, 2, 3])
@pytest.mark.parametrize("n_bytes", [1, 100, 350, 730])
def test_hdfs_write_matches_legacy(replication, n_bytes):
    """Default-knob DFSClient.write ≡ frozen sequential store-and-forward:
    clock, replica placements, and stored bytes."""
    data = payload(n_bytes, seed=n_bytes)

    def drive(use_legacy):
        env, hdfs, client = make_hdfs_world(replication=replication)
        if use_legacy:
            run(env, legacy_hdfs_write(client, "/f", data))
        else:
            run(env, client.write("/f", data))
        locations = [tuple(b.locations) for b
                     in hdfs.namenode.get_block_locations("/f")]
        return env.now, locations, hdfs.read_file_sync("/f"), \
            client.bytes_written

    old_now, old_locs, old_bytes, old_written = drive(use_legacy=True)
    new_now, new_locs, new_bytes, new_written = drive(use_legacy=False)
    assert new_bytes == old_bytes == data
    assert new_locs == old_locs
    assert new_written == old_written == n_bytes
    assert new_now == pytest.approx(old_now, abs=1e-9)


@pytest.mark.parametrize("seed", [1, 5, 17])
def test_concurrent_hdfs_writes_match_legacy(seed):
    """Several writers racing on the same datanodes/links."""
    rng = random.Random(seed)
    jobs = [(f"/f{i}", payload(rng.randrange(1, 500), seed=seed * 10 + i))
            for i in range(3)]

    def drive(use_legacy):
        env, hdfs, _client = make_hdfs_world(replication=2)
        clients = [hdfs.client(hdfs.datanode(name).node)
                   for name in list(hdfs._datanodes)[:3]]
        finishes = []

        def one(client, path, data):
            if use_legacy:
                yield env.process(legacy_hdfs_write(client, path, data))
            else:
                yield env.process(client.write(path, data))
            finishes.append((path, env.now))

        for client, (path, data) in zip(clients, jobs):
            env.process(one(client, path, data))
        env.run()
        stored = {path: hdfs.read_file_sync(path) for path, _ in jobs}
        return finishes, stored

    old, old_stored = drive(use_legacy=True)
    new, new_stored = drive(use_legacy=False)
    assert new_stored == old_stored
    for (p_new, t_new), (p_old, t_old) in zip(new, old):
        assert p_new == p_old
        assert t_new == pytest.approx(t_old, abs=1e-9)


# -------------------------------------------------------------- PFS writes
@pytest.mark.parametrize("seed,offset,n_bytes", [
    (1, 0, 50), (2, 0, 1000), (3, 37, 613), (4, 250, 901), (5, 99, 1),
])
def test_pfs_write_matches_legacy(seed, offset, n_bytes):
    """Default-knob PFSClient.write ≡ frozen unbounded stripe pushes,
    including odd offsets that start mid-stripe."""
    data = payload(n_bytes, seed=seed)

    def drive(use_legacy):
        env, pfs, client = make_pfs_world(stripe_size=100, stripe_count=4)
        # pre-create so both worlds write into an identical layout and
        # the offset write has a defined prefix
        pfs.store_file("/f", payload(offset + n_bytes, seed=seed + 100))
        if use_legacy:
            run(env, legacy_pfs_write(client, "/f", data, offset=offset))
        else:
            run(env, client.write("/f", data, offset=offset))
        return env.now, pfs.read_file_sync("/f"), client.bytes_written

    old_now, old_bytes, _old_written = drive(use_legacy=True)
    new_now, new_bytes, new_written = drive(use_legacy=False)
    assert new_bytes == old_bytes
    assert new_bytes[offset:offset + n_bytes] == data
    assert new_written == n_bytes  # the satellite accounting fix
    assert new_now == pytest.approx(old_now, abs=1e-9)


def test_pfs_write_creates_file_like_legacy():
    data = payload(333, seed=7)

    def drive(use_legacy):
        env, pfs, client = make_pfs_world(stripe_size=64, stripe_count=4)
        writer = (legacy_pfs_write(client, "/new", data) if use_legacy
                  else client.write("/new", data))
        run(env, writer)
        return env.now, pfs.read_file_sync("/new")

    old_now, old_bytes = drive(use_legacy=True)
    new_now, new_bytes = drive(use_legacy=False)
    assert new_bytes == old_bytes == data
    assert new_now == pytest.approx(old_now, abs=1e-9)


# ------------------------------------------------------------ MPI-IO writes
def make_mpi_world(n_ranks=4):
    env = Environment()
    cluster = Cluster(env)
    ranks = [cluster.add_node(f"c{i}", small_spec(), role="compute")
             for i in range(n_ranks)]
    oss0 = cluster.add_node("oss0", small_spec(n_disks=2), role="storage")
    oss1 = cluster.add_node("oss1", small_spec(n_disks=2), role="storage")
    pfs = PFS(env, cluster.network, oss0, [oss0, oss1],
              default_layout=StripeLayout(stripe_size=64, stripe_count=4))
    return env, pfs, [PFSClient(pfs, node) for node in ranks]


@pytest.mark.parametrize("seed", [2, 9, 31])
def test_write_at_all_matches_legacy(seed):
    """Default-knob MPIFile.write_at_all ≡ frozen two-phase collective."""
    rng = random.Random(seed)
    total = 2000
    cuts = sorted(rng.sample(range(1, total), 3))
    bounds = list(zip([0, *cuts], [*cuts, total]))
    data = payload(total, seed=seed)
    requests = [
        None if rng.random() < 0.25 else (lo, data[lo:hi])
        for lo, hi in bounds
    ]
    if all(req is None for req in requests):
        requests[0] = (bounds[0][0], data[bounds[0][0]:bounds[0][1]])

    def drive(use_legacy):
        env, pfs, clients = make_mpi_world(n_ranks=len(requests))
        # pre-store a full base file so non-writer ranks' holes read
        # back as defined bytes in both worlds
        pfs.store_file("/out", payload(total, seed=seed + 500))
        handle = MPIFile.open(clients, "/out")
        writer = (legacy_write_at_all(handle, requests) if use_legacy
                  else handle.write_at_all(requests))
        run(env, writer)
        return env.now, pfs.read_file_sync("/out")

    old_now, old_bytes = drive(use_legacy=True)
    new_now, new_bytes = drive(use_legacy=False)
    assert new_bytes == old_bytes
    assert new_now == pytest.approx(old_now, abs=1e-9)


# ----------------------------------------------- non-default knob sanity
def test_packet_pipeline_is_faster_and_byte_identical():
    """The non-default pipeline must beat store-and-forward at
    replication 3 while storing the same bytes in the same placements."""
    data = payload(600, seed=13)

    def drive(packet_bytes):
        env, hdfs, _client = make_hdfs_world(replication=3)
        client = hdfs.client(hdfs.datanode(list(hdfs._datanodes)[0]).node,
                             packet_bytes=packet_bytes)
        run(env, client.write("/f", data))
        locations = [tuple(b.locations) for b
                     in hdfs.namenode.get_block_locations("/f")]
        return env.now, locations, hdfs.read_file_sync("/f")

    slow_now, slow_locs, slow_bytes = drive(packet_bytes=None)
    fast_now, fast_locs, fast_bytes = drive(packet_bytes=25)
    assert fast_bytes == slow_bytes == data
    assert fast_locs == slow_locs
    assert fast_now < slow_now


def test_parallel_blocks_faster_and_byte_identical():
    data = payload(700, seed=21)

    def drive(window):
        env, hdfs, _client = make_hdfs_world(replication=2)
        client = hdfs.client(hdfs.datanode(list(hdfs._datanodes)[0]).node,
                             packet_bytes=25, write_parallel_blocks=window)
        run(env, client.write("/f", data))
        return env.now, hdfs.read_file_sync("/f")

    serial_now, serial_bytes = drive(window=1)
    fanned_now, fanned_bytes = drive(window=0)
    assert fanned_bytes == serial_bytes == data
    assert fanned_now < serial_now


def test_pfs_chunked_windowed_write_byte_identical():
    """Chunked + windowed stripe pushes store exactly the same bytes."""
    data = payload(1357, seed=23)

    def drive(write_chunk, window):
        env, pfs, _client = make_pfs_world(stripe_size=100, stripe_count=4)
        client = pfs.client(_client.node, write_max_inflight=window,
                            write_chunk=write_chunk)
        run(env, client.write("/f", data, offset=41))
        return pfs.read_file_sync("/f")

    assert drive(None, 0) == drive(64, 3)
