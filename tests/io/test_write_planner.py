"""Unit tests for the write planner: planning, fan-out, write-behind."""

import pytest

from repro.io.plan import Extent, WritePlan
from repro.io.write import (
    WriteBehindFlusher,
    WritePlanner,
    chop_extents,
    coalesce_payload_runs,
)
from repro.obs.metrics import attach_metrics
from repro.sim import Environment

from tests.io.conftest import run


def ext(ost, obj_off, file_off, length):
    return Extent(ost_index=ost, object_offset=obj_off,
                  file_offset=file_off, length=length)


# ----------------------------------------------------------- pure planning
def test_coalesce_merges_only_payload_contiguous_runs():
    # object-adjacent AND payload-adjacent: merges
    merged = coalesce_payload_runs([ext(0, 0, 0, 10), ext(0, 10, 10, 5)])
    assert merged == [ext(0, 0, 0, 15)]
    # object-adjacent but the payload skips ahead (stripe interleaving):
    # must NOT merge, one push would carry discontiguous payload bytes
    kept = coalesce_payload_runs([ext(0, 0, 0, 10), ext(0, 10, 50, 10)])
    assert kept == [ext(0, 0, 0, 10), ext(0, 10, 50, 10)]
    # payload-adjacent but different devices: must not merge either
    kept = coalesce_payload_runs([ext(0, 0, 0, 10), ext(1, 0, 10, 10)])
    assert len(kept) == 2


def test_coalesce_preserves_payload_order():
    extents = [ext(1, 0, 0, 8), ext(0, 0, 8, 8), ext(1, 8, 16, 8)]
    assert coalesce_payload_runs(extents) == extents


def test_chop_extents_none_is_identity():
    extents = [ext(0, 0, 0, 100), ext(1, 0, 100, 37)]
    assert chop_extents(extents, None) == extents


def test_chop_extents_splits_to_granularity():
    pieces = chop_extents([ext(0, 5, 50, 100)], 40)
    assert pieces == [
        ext(0, 5, 50, 40), ext(0, 45, 90, 40), ext(0, 85, 130, 20)]
    assert sum(p.length for p in pieces) == 100


def test_plan_extents_default_passthrough():
    env = Environment()
    planner = WritePlanner(env, scheme="pfs")
    extents = [ext(0, 0, 0, 10), ext(0, 10, 10, 10)]
    plan = planner.plan_extents(extents)
    assert isinstance(plan, WritePlan)
    # chunk=None: no merging, no chopping — the legacy push-per-extent
    # shape, bit-identical timings depend on it
    assert list(plan.extents) == extents
    assert plan.chunk is None
    assert plan.n_requests == 2


def test_plan_extents_with_chunk_merges_then_chops():
    env = Environment()
    planner = WritePlanner(env, scheme="pfs", chunk=16)
    plan = planner.plan_extents([ext(0, 0, 0, 10), ext(0, 10, 10, 10)])
    assert list(plan.extents) == [ext(0, 0, 0, 16), ext(0, 16, 16, 4)]


def test_planner_validates_knobs():
    env = Environment()
    with pytest.raises(ValueError):
        WritePlanner(env, chunk=0)
    with pytest.raises(ValueError):
        WritePlanner(env, max_inflight=-1)


# -------------------------------------------------------------- accounting
def test_account_feeds_scheme_counters():
    env = Environment()
    registry = attach_metrics(env)
    planner = WritePlanner(env, scheme="hdfs")
    planner.account(100)
    planner.account(250, requests=3)
    planner.account(0, requests=0)  # no-op, no zero-count counters
    rows = {row["scheme"]: row for row in registry.scheme_write_rows()}
    assert rows["hdfs"]["bytes"] == 350
    assert rows["hdfs"]["requests"] == 4


def test_account_without_registry_is_noop():
    env = Environment()
    WritePlanner(env, scheme="hdfs").account(100)  # must not raise


# ------------------------------------------------------- fan-out disciplines
def make_factory(env, duration, log, label):
    def factory():
        log.append(("start", label, env.now))
        yield env.timeout(duration)
        log.append(("end", label, env.now))
        return label
    return factory


def test_fan_out_stripes_unbounded_overlaps_everything():
    env = Environment()
    planner = WritePlanner(env, scheme="pfs")
    log = []
    factories = [make_factory(env, 1.0, log, i) for i in range(4)]
    results = run(env, planner.fan_out_stripes(factories))
    assert results == [0, 1, 2, 3]
    assert env.now == pytest.approx(1.0)  # all four in parallel
    assert [e for e in log if e[0] == "start"] == [
        ("start", i, 0.0) for i in range(4)]


def test_fan_out_stripes_windowed_bounds_concurrency():
    env = Environment()
    planner = WritePlanner(env, scheme="pfs", max_inflight=2)
    log = []
    factories = [make_factory(env, 1.0, log, i) for i in range(4)]
    results = run(env, planner.fan_out_stripes(factories))
    assert results == [0, 1, 2, 3]
    assert env.now == pytest.approx(2.0)  # 4 pushes / window 2
    in_flight = peak = 0
    for kind, _label, _t in log:
        in_flight += 1 if kind == "start" else -1
        peak = max(peak, in_flight)
    assert peak == 2


def test_fan_out_stripes_empty():
    env = Environment()
    planner = WritePlanner(env, scheme="pfs")
    assert run(env, planner.fan_out_stripes([])) == []
    assert env.now == 0.0


def test_fan_out_blocks_default_is_serial():
    env = Environment()
    planner = WritePlanner(env, scheme="hdfs")
    log = []
    factories = [make_factory(env, 1.0, log, i) for i in range(3)]
    results = run(env, planner.fan_out_blocks(factories, max_inflight=1))
    assert results == [0, 1, 2]
    assert env.now == pytest.approx(3.0)  # strictly one block at a time


def test_fan_out_blocks_windowed_overlaps():
    env = Environment()
    planner = WritePlanner(env, scheme="hdfs")
    log = []
    factories = [make_factory(env, 1.0, log, i) for i in range(4)]
    results = run(env, planner.fan_out_blocks(factories, max_inflight=2))
    assert results == [0, 1, 2, 3]
    assert env.now == pytest.approx(2.0)


# ------------------------------------------------------------- write-behind
class FakeStore:
    """In-memory storage client with DES-process write/exists/delete."""

    def __init__(self, env, write_time=1.0):
        self.env = env
        self.write_time = write_time
        self.files = {}
        self.log = []

    def exists(self, path):
        yield self.env.timeout(0.0)
        return path in self.files

    def delete(self, path):
        yield self.env.timeout(0.0)
        self.log.append(("delete", path))
        del self.files[path]

    def write(self, path, payload):
        yield self.env.timeout(self.write_time)
        self.log.append(("write", path, bytes(payload)))
        self.files[path] = bytes(payload)


class FailingStore(FakeStore):
    def write(self, path, payload):
        yield self.env.timeout(0.1)
        raise RuntimeError("disk on fire")


def test_flusher_overlaps_flush_with_submitter():
    env = Environment()
    store = FakeStore(env, write_time=5.0)
    flusher = WriteBehindFlusher(env)

    def task():
        flusher.submit(store, "/out/a", b"aa")
        # submit is pure Python: the task keeps the clock while the
        # flush happens in the background
        assert env.now == 0.0
        yield env.timeout(1.0)

    def job():
        yield env.process(task())
        yield from flusher.drain()

    run(env, job())
    assert store.files["/out/a"] == b"aa"
    assert env.now == pytest.approx(5.0)  # flush overlapped the task
    assert flusher.submitted == 1
    assert flusher.bytes_submitted == 2


def test_flusher_serializes_same_path_last_write_wins():
    env = Environment()
    store = FakeStore(env, write_time=1.0)
    flusher = WriteBehindFlusher(env)

    def job():
        flusher.submit(store, "/out/a", b"first")
        flusher.submit(store, "/out/a", b"second")
        yield from flusher.drain()

    run(env, job())
    # the retry's payload deterministically lands last, after an
    # idempotent replace of the first attempt's file
    assert store.files["/out/a"] == b"second"
    assert ("delete", "/out/a") in store.log
    assert store.log[-1] == ("write", "/out/a", b"second")


def test_flusher_replaces_preexisting_file():
    env = Environment()
    store = FakeStore(env)
    store.files["/out/a"] = b"stale"
    flusher = WriteBehindFlusher(env)

    def job():
        flusher.submit(store, "/out/a", b"fresh")
        yield from flusher.drain()

    run(env, job())
    assert store.files["/out/a"] == b"fresh"
    assert store.log[0] == ("delete", "/out/a")


def test_flusher_bounded_window():
    env = Environment()
    store = FakeStore(env, write_time=1.0)
    flusher = WriteBehindFlusher(env, max_inflight=2)

    def job():
        for i in range(4):
            flusher.submit(store, f"/out/{i}", b"x")
        yield from flusher.drain()

    run(env, job())
    assert env.now == pytest.approx(2.0)  # 4 flushes / window 2
    assert len(store.files) == 4


def test_flusher_drain_reraises_flush_failure():
    env = Environment()
    store = FailingStore(env)
    flusher = WriteBehindFlusher(env)

    def job():
        flusher.submit(store, "/out/a", b"x")
        yield from flusher.drain()

    with pytest.raises(RuntimeError, match="disk on fire"):
        run(env, job())


def test_flusher_submit_returns_completion_event():
    env = Environment()
    store = FakeStore(env, write_time=2.0)
    flusher = WriteBehindFlusher(env)
    seen = []

    def job():
        done = flusher.submit(store, "/out/a", b"x")
        yield done
        seen.append(env.now)
        yield from flusher.drain()

    run(env, job())
    assert seen == [pytest.approx(2.0)]
