"""Shared MapReduce test fixtures."""

import pytest

from repro.cluster import Cluster, DiskSpec, LinkSpec, NodeSpec
from repro.hdfs import HDFS
from repro.sim import Environment


def small_spec(disk_bw=10**6, nic_bw=10**7, cpus=8):
    return NodeSpec(
        cpus=cpus,
        memory=10**9,
        disks=(DiskSpec(bandwidth=disk_bw, seek_latency=0.001),),
        nic=LinkSpec(bandwidth=nic_bw, latency=0.0001),
    )


@pytest.fixture
def world():
    """4 compute/data nodes; block size 200 B; replication 1."""
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(4)]
    hdfs = HDFS(env, cluster.network, block_size=200, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    return env, cluster, hdfs, nodes


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value
