"""Tests for Hadoop-style grouped job counters."""

from repro.mapreduce.counters import Counters


def test_increment_and_value():
    c = Counters()
    c.increment("job", "splits", 4)
    c.increment("job", "splits")
    assert c.value("job", "splits") == 5
    assert c.value("job", "missing") == 0
    assert c.value("nope", "splits") == 0
    assert c.group("job") == {"splits": 5}


def test_merge_sums_overlapping_and_copies_new():
    a = Counters()
    a.increment("task", "records_read", 10)
    a.increment("task", "bytes_read", 100)
    b = Counters()
    b.increment("task", "records_read", 7)
    b.increment("hdfs", "blocks", 2)
    a.merge(b)
    assert a.value("task", "records_read") == 17
    assert a.value("task", "bytes_read") == 100
    assert a.value("hdfs", "blocks") == 2
    # merge reads from the source without mutating it
    assert b.value("task", "records_read") == 7
    assert b.value("task", "bytes_read") == 0


def test_merge_empty_is_noop():
    a = Counters()
    a.increment("g", "n", 1)
    a.merge(Counters())
    assert a.as_dict() == {"g": {"n": 1}}


def test_as_dict_is_a_copy():
    a = Counters()
    a.increment("g", "n", 1)
    snapshot = a.as_dict()
    snapshot["g"]["n"] = 99
    assert a.value("g", "n") == 1
