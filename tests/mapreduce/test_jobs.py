"""End-to-end MapReduce job tests (wordcount, map-only, boundaries)."""

import pickle

import pytest

from repro.mapreduce import (
    BytesInputFormat,
    JobConf,
    JobRunner,
    MapReduceError,
    TextInputFormat,
)

from tests.mapreduce.conftest import run


def wordcount_mapper(ctx, _offset, line):
    for word in line.split():
        ctx.emit(word, 1)
    ctx.charge(1e-6 * len(line))


def sum_reducer(ctx, key, values):
    ctx.emit(key, sum(values))
    ctx.charge(1e-7 * len(values))


TEXT = b"the quick brown fox\njumps over the lazy dog\n" \
       b"the dog barks\nfox and dog\n" * 20


def make_job(**kw):
    defaults = dict(
        name="wc",
        mapper=wordcount_mapper,
        reducer=sum_reducer,
        combiner=sum_reducer,
        input_format=TextInputFormat(),
        n_reducers=3,
        input_paths=["/in"],
        map_slots_per_node=2,
        task_startup=0.01,
    )
    defaults.update(kw)
    return JobConf(**defaults)


def expected_counts(text=TEXT):
    counts = {}
    for word in text.split():
        counts[word] = counts.get(word, 0) + 1
    return counts


def test_wordcount_end_to_end(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    job = make_job()
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())

    got = {}
    for records in result.outputs.values():
        for key, value in records:
            assert key not in got  # each key in exactly one partition
            got[key] = value
    assert got == expected_counts()
    assert result.duration > 0
    assert result.counters.value("job", "splits") >= 1


def test_wordcount_multiple_files(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"alpha beta\n" * 10)
    hdfs.store_file_sync("/in/b.txt", b"beta gamma\n" * 10)
    job = make_job()
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    got = {k: v for recs in result.outputs.values() for k, v in recs}
    assert got == {b"alpha": 10, b"beta": 20, b"gamma": 10}


def test_records_survive_block_boundaries(world):
    """Lines deliberately straddle the 200-byte block boundary."""
    env, cluster, hdfs, nodes = world
    # 70-byte lines -> boundaries at 200/400/... never on a newline.
    line = b"x" * 64 + b" tail\n"
    assert len(line) == 70
    hdfs.store_file_sync("/in/straddle.txt", line * 30)
    job = make_job()
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    got = {k: v for recs in result.outputs.values() for k, v in recs}
    assert got == {b"x" * 64: 30, b"tail": 30}


def test_map_only_job_returns_map_records(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"one\ntwo\nthree\n")

    def identity_mapper(ctx, offset, line):
        ctx.emit(line, offset)

    job = make_job(mapper=identity_mapper, reducer=None, combiner=None,
                   n_reducers=0)
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    assert sorted(k for k, _v in result.map_records) == [
        b"one", b"three", b"two"]
    assert result.outputs == {}


def test_output_written_to_storage(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"a b a\n")
    job = make_job(output_path="/out", n_reducers=2)
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    assert len(result.output_paths) == 2
    persisted = {}
    for path in result.output_paths:
        for key, value in pickle.loads(hdfs.read_file_sync(path)):
            persisted[key] = value
    assert persisted == {b"a": 2, b"b": 1}


def test_locality_preferred(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", TEXT)
    job = make_job()
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    # With 4 balanced datanodes, block replicas exist on every node and
    # pullers prefer local splits: no remote map reads should happen.
    locations = {
        b.locations[0]
        for b in hdfs.namenode.get_block_locations("/in/a.txt")}
    map_nodes = {s.node for s in result.stats_for("map")}
    assert map_nodes <= {n.name for n in nodes}
    assert locations  # sanity


def test_combiner_reduces_shuffle_volume(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", TEXT)

    def run_job(combiner):
        env2, cluster2, hdfs2, nodes2 = world  # same world, fresh job
        job = make_job(combiner=combiner, name="wc2" if combiner else "wc3")
        runner = JobRunner(env, nodes, hdfs, cluster.network, job)
        return run(env, runner.run())

    with_combiner = run_job(sum_reducer)
    without_combiner = run_job(None)
    assert (with_combiner.counters.value("shuffle", "bytes")
            < without_combiner.counters.value("shuffle", "bytes"))
    got_a = {k: v for r in with_combiner.outputs.values() for k, v in r}
    got_b = {k: v for r in without_combiner.outputs.values() for k, v in r}
    assert got_a == got_b == expected_counts()


def test_more_nodes_run_faster(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/big.txt", TEXT * 40)

    def elapsed(node_subset, name):
        job = make_job(name=name)
        job.params["x"] = name
        runner = JobRunner(env, node_subset, hdfs, cluster.network, job)
        t0 = env.now
        run(env, runner.run())
        return env.now - t0

    t_all = elapsed(nodes, "fast")
    t_one = elapsed(nodes[:1], "slow")
    assert t_all < t_one


def test_phase_means_exposes_read_phase(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", TEXT)
    job = make_job()
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    means = result.phase_means("map")
    assert means.get("read", 0) > 0
    assert means.get("compute", 0) > 0


def test_job_validation_errors():
    with pytest.raises(MapReduceError):
        JobConf(name="bad", mapper=None,
                input_format=TextInputFormat(),
                input_paths=["/x"]).validate()
    with pytest.raises(MapReduceError):
        JobConf(name="bad", mapper=lambda *a: None,
                input_format=None, input_paths=["/x"]).validate()
    with pytest.raises(MapReduceError):
        JobConf(name="bad", mapper=lambda *a: None,
                input_format=TextInputFormat(),
                input_paths=[]).validate()
    with pytest.raises(MapReduceError):
        JobConf(name="bad", mapper=lambda *a: None,
                reducer=lambda *a: None, n_reducers=0,
                input_format=TextInputFormat(),
                input_paths=["/x"]).validate()


def test_bytes_input_format_whole_blocks(world):
    env, cluster, hdfs, nodes = world
    data = bytes(range(256)) * 3  # 768 bytes -> 4 blocks of <=200
    hdfs.store_file_sync("/in/raw.bin", data)

    def block_mapper(ctx, key, value):
        ctx.emit(key, len(value))

    job = make_job(mapper=block_mapper, reducer=None, combiner=None,
                   n_reducers=0, input_format=BytesInputFormat())
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    sizes = sorted(v for _k, v in result.map_records)
    assert sizes == [168, 200, 200, 200]


def test_empty_input_dir_raises(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/elsewhere/a.txt", b"x\n")
    job = make_job(input_paths=["/in"])
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)

    def proc():
        yield from runner.run()

    with pytest.raises(Exception):
        run(env, proc())
