"""Twin-world tests: production shuffle vs the frozen legacy copies.

With every shuffle knob at its default (overlap off, no parallel
copies, single-attempt fetches, unbounded merge) the refactored data
path must be *invisible*: identical partition assignments, identical
merged byte streams, and job/task timings pinned to 1e-9 against
:mod:`repro.mapreduce._legacy` — the same twin-world discipline as
``sim/_legacy.py`` and ``io/_legacy.py``.
"""

import random

import pytest

import repro.mapreduce.runtime as runtime_mod
from repro.mapreduce import JobConf, JobRunner, TextInputFormat
from repro.mapreduce._legacy import (
    LegacyReduceTask,
    legacy_estimate_size,
    legacy_hash_partition,
    legacy_merge_sorted_runs,
)
from repro.mapreduce.shuffle import (
    estimate_size,
    hash_partition,
    merge_sorted_runs,
    sort_run,
)

from tests.mapreduce.conftest import run, world  # noqa: F401 (fixture)


# ------------------------------------------------------ pure functions

def random_key(rng):
    kind = rng.randrange(6)
    if kind == 0:   # bytes across the vectorization threshold
        return bytes(rng.randrange(256)
                     for _ in range(rng.randrange(0, 200)))
    if kind == 1:   # str (memoized encode path)
        return "".join(chr(rng.randrange(32, 0x2FF))
                       for _ in range(rng.randrange(0, 120)))
    if kind == 2:
        return rng.randrange(-2**40, 2**40)
    if kind == 3:   # tuple (mixed-modulus fold)
        return tuple(random_key(rng) for _ in range(rng.randrange(0, 4))
                     ) or ("empty",)
    if kind == 4:
        return rng.random() * 1e6   # repr fallback
    return rng.choice([True, False, None])


@pytest.mark.parametrize("seed", [3, 71, 20240806])
def test_hash_partition_matches_legacy_fold(seed):
    rng = random.Random(seed)
    for _ in range(500):
        key = random_key(rng)
        n = rng.choice([1, 2, 7, 64, 1009])
        assert hash_partition(key, n) == legacy_hash_partition(key, n), key


def test_hash_partition_vector_path_exact_on_long_keys():
    # Long keys exercise the uint64-wraparound congruence argument.
    for n in [31, 32, 33, 1000, 65536]:
        key = bytes((i * 37 + 11) % 256 for i in range(n))
        assert hash_partition(key, 0x7FFFFFFF) == \
            legacy_hash_partition(key, 0x7FFFFFFF)


@pytest.mark.parametrize("seed", [5, 13])
def test_streaming_merge_matches_legacy_merge(seed):
    rng = random.Random(seed)
    for _ in range(50):
        runs = [
            sort_run([(rng.choice("abcde"), rng.randrange(10))
                      for _ in range(rng.randrange(0, 12))])
            for _ in range(rng.randrange(0, 6))
        ]
        assert merge_sorted_runs(runs) == legacy_merge_sorted_runs(runs)


def test_streaming_merge_equal_key_order_matches_legacy():
    # Equal keys must come out in run order then record order.
    runs = [[("k", 0), ("k", 1)], [("k", 2)], [("a", 9), ("k", 3)]]
    assert merge_sorted_runs(runs) == legacy_merge_sorted_runs(runs)


def test_estimate_size_matches_legacy_on_acyclic_structures():
    rng = random.Random(42)

    def random_obj(depth=0):
        if depth > 3 or rng.random() < 0.4:
            return rng.choice([
                None, True, b"xy", "s", 7, 1.5,
                bytes(rng.randrange(20))])
        kind = rng.randrange(3)
        children = [random_obj(depth + 1)
                    for _ in range(rng.randrange(0, 4))]
        if kind == 0:
            return children
        if kind == 1:
            return tuple(children)
        return {i: c for i, c in enumerate(children)}

    for _ in range(200):
        obj = random_obj()
        assert estimate_size(obj) == legacy_estimate_size(obj)


def test_estimate_size_shared_substructure_counted_like_legacy():
    shared = [b"payload"]
    obj = [shared, shared]  # a DAG, not a cycle: both copies count
    assert estimate_size(obj) == legacy_estimate_size(obj)


# ------------------------------------------------- twin-world job runs

TEXT = (b"the quick brown fox\njumps over the lazy dog\n"
        b"the dog barks\nfox and dog\n") * 25


def wc_map(ctx, _offset, line):
    for word in line.split():
        ctx.emit(word, 1)
    ctx.charge(1e-6 * len(line))


def wc_reduce(ctx, key, values):
    ctx.emit(key, sum(values))
    ctx.charge(1e-7 * len(values))


def run_wordcount(world_factory, reduce_task_cls, monkeypatch, **conf):
    env, cluster, hdfs, nodes = world_factory()
    hdfs.store_file_sync("/in/text.txt", TEXT)
    with monkeypatch.context() as patch:
        patch.setattr(runtime_mod, "ReduceTask", reduce_task_cls)
        settings = dict(
            name="twin", mapper=wc_map, reducer=wc_reduce,
            input_format=TextInputFormat(), n_reducers=3,
            input_paths=["/in"], map_slots_per_node=2,
            task_startup=0.01, output_path="/out")
        settings.update(conf)
        job = JobConf(**settings)
        runner = JobRunner(env, nodes, hdfs, cluster.network, job)
        result = run(env, runner.run())
    return result


def fresh_world():
    from repro.cluster import Cluster
    from repro.hdfs import HDFS
    from repro.sim import Environment
    from tests.mapreduce.conftest import small_spec

    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(4)]
    hdfs = HDFS(env, cluster.network, block_size=200, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    return env, cluster, hdfs, nodes


@pytest.mark.parametrize("conf", [
    {},                                    # plain wordcount
    {"combiner": wc_reduce},               # map-side combiner (shared code)
    {"n_reducers": 1},                     # single fat partition
])
def test_default_knobs_pin_legacy_reduce_timings(monkeypatch, conf):
    new = run_wordcount(fresh_world, runtime_mod.ReduceTask,
                        monkeypatch, **conf)
    old = run_wordcount(fresh_world, LegacyReduceTask, monkeypatch, **conf)

    # Job end-to-end timing pinned to 1e-9.
    assert new.duration == pytest.approx(old.duration, abs=1e-9)
    assert new.end == pytest.approx(old.end, abs=1e-9)

    # Per-reduce-task start/end pinned to 1e-9, pairwise.
    new_r = sorted(new.stats_for("reduce"), key=lambda s: s.task_id)
    old_r = sorted(old.stats_for("reduce"), key=lambda s: s.task_id)
    assert len(new_r) == len(old_r) > 0
    for s_new, s_old in zip(new_r, old_r):
        assert s_new.start == pytest.approx(s_old.start, abs=1e-9)
        assert s_new.end == pytest.approx(s_old.end, abs=1e-9)

    # Identical byte streams: same partition assignment, same merged
    # record order, same persisted outputs.
    assert new.outputs == old.outputs
    assert new.output_paths == old.output_paths
    assert new.counters.value("shuffle", "bytes") == \
        old.counters.value("shuffle", "bytes")
    assert new.counters.value("reduce", "groups") == \
        old.counters.value("reduce", "groups")
