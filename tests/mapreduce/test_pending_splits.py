"""PendingSplits vs the legacy O(pending) list scan.

The claim order decides which node runs which split and therefore the
whole DES event order, so the host-indexed queue must reproduce the
legacy semantics *exactly*: oldest node-local split first, else oldest
overall, requeues at the back.
"""

import random

from repro.mapreduce.input_format import InputSplit
from repro.mapreduce.runtime import PendingSplits


def legacy_pick(pending, node_name):
    """The pre-index claim loop, verbatim."""
    for i, split in enumerate(pending):
        if node_name in split.locations:
            return pending.pop(i)
    return pending.pop(0) if pending else None


def make_splits(rng, n, hosts):
    return [
        InputSplit(
            path=f"/f{i}", index=i, length=100,
            locations=rng.sample(hosts, rng.randrange(0, 3)))
        for i in range(n)
    ]


def test_local_split_claimed_before_remote():
    splits = [
        InputSplit(path="/a", index=0, length=1, locations=["n1"]),
        InputSplit(path="/b", index=0, length=1, locations=["n0"]),
    ]
    queue = PendingSplits(splits)
    assert queue.take("n0") is splits[1]   # skips the older remote split
    assert queue.take("n0") is splits[0]   # then falls back to it
    assert queue.take("n0") is None


def test_requeue_goes_to_the_back():
    splits = [
        InputSplit(path="/a", index=0, length=1, locations=[]),
        InputSplit(path="/b", index=0, length=1, locations=[]),
    ]
    queue = PendingSplits(splits)
    first = queue.take("n0")
    queue.add(first)                        # retry requeue
    assert queue.take("n0") is splits[1]
    assert queue.take("n0") is first


def test_randomized_claim_order_matches_legacy_scan():
    hosts = [f"n{i}" for i in range(4)]
    for seed in [2, 17, 4040]:
        rng = random.Random(seed)
        splits = make_splits(rng, 60, hosts)
        legacy = list(splits)
        queue = PendingSplits(splits)
        taken = []  # indexed claims available for requeue
        # Interleave claims and requeues exactly the way _map_worker
        # does (claim from a random node; occasionally requeue a fail).
        for _ in range(400):
            op = rng.random()
            if op < 0.25 and taken:
                split = taken.pop(rng.randrange(len(taken)))
                legacy.append(split)
                queue.add(split)
                continue
            node = rng.choice(hosts)
            want = legacy_pick(legacy, node)
            got = queue.take(node)
            assert got is want
            if got is not None and rng.random() < 0.5:
                taken.append(got)
        assert len(legacy) == len(queue)


def test_len_tracks_outstanding_splits():
    rng = random.Random(1)
    splits = make_splits(rng, 10, ["n0", "n1"])
    queue = PendingSplits(splits)
    assert len(queue) == 10
    queue.take("n0")
    queue.take("missing-host")
    assert len(queue) == 8
