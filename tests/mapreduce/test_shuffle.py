"""Tests for partitioner, sort, merge, grouping and size estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.shuffle import (
    estimate_size,
    group_sorted,
    hash_partition,
    merge_sorted_runs,
    sort_run,
)


def test_hash_partition_deterministic_and_in_range():
    for key in [b"word", "word", 42, ("a", 1), 3.5]:
        p = hash_partition(key, 7)
        assert 0 <= p < 7
        assert hash_partition(key, 7) == p


def test_hash_partition_spreads_keys():
    buckets = {hash_partition(f"key-{i}", 8) for i in range(100)}
    assert len(buckets) == 8


def test_hash_partition_validates():
    with pytest.raises(ValueError):
        hash_partition("k", 0)


def test_sort_run_stable_by_key():
    records = [("b", 1), ("a", 2), ("b", 0), ("a", 1)]
    assert sort_run(records) == [("a", 2), ("a", 1), ("b", 1), ("b", 0)]


def test_merge_sorted_runs_matches_global_sort():
    runs = [
        sort_run([("c", 1), ("a", 1)]),
        sort_run([("b", 2), ("a", 2)]),
        [],
        sort_run([("d", 3)]),
    ]
    merged = merge_sorted_runs(runs)
    assert merged == sort_run([kv for run in runs for kv in run])


def test_group_sorted():
    records = [("a", 1), ("a", 2), ("b", 3)]
    assert list(group_sorted(records)) == [("a", [1, 2]), ("b", [3])]
    assert list(group_sorted([])) == []


def test_estimate_size_basics():
    assert estimate_size(b"12345") == 5
    assert estimate_size("abc") == 3
    assert estimate_size(7) == 8
    assert estimate_size(1.5) == 8
    assert estimate_size(None) == 1
    assert estimate_size(np.zeros((2, 3), dtype=np.float32)) == 24
    assert estimate_size([b"ab", b"cd"]) == 8 + 4
    assert estimate_size({"k": 1}) == 8 + 1 + 8


def test_estimate_size_self_referencing_list_terminates():
    cyclic = [b"head"]
    cyclic.append(cyclic)
    # 8 (outer) + 4 (b"head") + fixed cycle cost for the back-reference
    assert estimate_size(cyclic) == 8 + 4 + 8


def test_estimate_size_dict_cycle_terminates():
    outer = {}
    outer["self"] = outer
    outer["n"] = 1
    assert estimate_size(outer) == 8 + len("self") + 8 + len("n") + 8


def test_estimate_size_mutual_cycle_terminates():
    a, b = [], []
    a.append(b)
    b.append(a)
    # a -> (b -> cycle(a))
    assert estimate_size(a) == 8 + (8 + 8)


def test_estimate_size_deep_nesting():
    obj = 1
    for _ in range(50):
        obj = [obj]
    assert estimate_size(obj) == 50 * 8 + 8


def test_estimate_size_shared_substructure_is_not_a_cycle():
    shared = [1, 2]                  # 8 + 16 = 24
    assert estimate_size([shared, shared]) == 8 + 24 + 24


def test_group_sorted_stream_matches_list_grouping():
    from repro.mapreduce.shuffle import group_sorted_stream

    records = [("a", 1), ("a", 2), ("b", 3)]
    assert list(group_sorted_stream(iter(records))) == \
        list(group_sorted(records))
    assert list(group_sorted_stream(iter([]))) == []


def test_merge_sorted_streams_is_lazy():
    from repro.mapreduce.shuffle import merge_sorted_streams

    pulled = []

    def probe(run):
        for kv in run:
            pulled.append(kv)
            yield kv

    stream = merge_sorted_streams([probe([("a", 1), ("z", 2)]),
                                   probe([("b", 3)])])
    next(stream)
    # Only the heads (plus one successor) were pulled, not everything.
    assert len(pulled) < 3


@given(st.lists(st.tuples(
    st.one_of(st.integers(), st.text(max_size=8)),
    st.integers())))
@settings(max_examples=60, deadline=None)
def test_property_merge_of_split_runs_is_total_sort(records):
    half = len(records) // 2
    runs = [sort_run(records[:half]), sort_run(records[half:])]
    assert merge_sorted_runs(runs) == sort_run(records)


@given(st.lists(st.tuples(st.text(max_size=6), st.integers()), min_size=1))
@settings(max_examples=60, deadline=None)
def test_property_grouping_preserves_all_values(records):
    grouped = list(group_sorted(sort_run(records)))
    regenerated = [(k, v) for k, values in grouped for v in values]
    assert sorted(regenerated) == sorted(records)
    keys = [k for k, _ in grouped]
    assert keys == sorted(set(keys))
