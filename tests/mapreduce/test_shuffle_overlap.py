"""End-to-end tests for the overlapped shuffle data path."""

import pytest

from repro.mapreduce import JobConf, JobRunner, MapReduceError, \
    TextInputFormat

from tests.mapreduce.conftest import run, world  # noqa: F401 (fixture)

TEXT = b"the quick brown fox\njumps over the lazy dog\n" \
       b"the dog barks\nfox and dog\n" * 20


def wc_map(ctx, _offset, line):
    for word in line.split():
        ctx.emit(word, 1)
    ctx.charge(1e-5 * len(line))


def wc_reduce(ctx, key, values):
    ctx.emit(key, sum(values))


def expected_counts(text=TEXT):
    counts = {}
    for word in text.split():
        counts[word] = counts.get(word, 0) + 1
    return counts


def make_job(**kw):
    defaults = dict(
        name="wc-overlap",
        mapper=wc_map,
        reducer=wc_reduce,
        input_format=TextInputFormat(),
        n_reducers=3,
        input_paths=["/in"],
        map_slots_per_node=2,
        task_startup=0.01,
    )
    defaults.update(kw)
    return JobConf(**defaults)


def run_job(world_tuple, **conf):
    env, cluster, hdfs, nodes = world_tuple
    job = make_job(**conf)
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    t0 = env.now
    result = run(env, runner.run())
    return result, env.now - t0


def flat(result):
    return {k: v for recs in result.outputs.values() for k, v in recs}


class FlakyShuffleNetwork:
    """Delegates to a real Network, failing the first ``n_failures``
    shuffle-tagged transfers."""

    def __init__(self, network, n_failures):
        self._network = network
        self.remaining = n_failures
        self.shuffle_calls = 0

    def transfer(self, src, dst, nbytes, tag=None):
        if tag == "shuffle":
            self.shuffle_calls += 1
            if self.remaining > 0:
                self.remaining -= 1
                raise RuntimeError("shuffle servlet connection reset")
        return self._network.transfer(src, dst, nbytes, tag=tag)

    def __getattr__(self, name):
        return getattr(self._network, name)


def test_overlap_identical_outputs_and_strictly_faster(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    legacy, t_legacy = run_job((env, cluster, hdfs, nodes))
    overlap, t_overlap = run_job(
        (env, cluster, hdfs, nodes),
        name="wc-overlap-on", shuffle_overlap=True,
        shuffle_parallel_copies=4)
    assert flat(overlap) == flat(legacy) == expected_counts()
    # Reducer startup + early fetches overlap the map wave.
    assert t_overlap < t_legacy
    # Copy-phase spans replace the barrier-mode "shuffle" phase.
    phases = overlap.stats_for("reduce")[0].phases
    assert "copy" in phases and "shuffle" not in phases


def test_parallel_copies_window_preserves_results(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    serial, _t1 = run_job(
        (env, cluster, hdfs, nodes),
        name="wc-serial-copy", shuffle_overlap=True,
        shuffle_parallel_copies=1)
    wide, _t2 = run_job(
        (env, cluster, hdfs, nodes),
        name="wc-wide-copy", shuffle_overlap=True,
        shuffle_parallel_copies=8)
    assert flat(serial) == flat(wide) == expected_counts()
    assert serial.counters.value("shuffle", "bytes") == \
        wide.counters.value("shuffle", "bytes")


def test_fetch_retry_recovers_from_transient_failures(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    flaky = FlakyShuffleNetwork(cluster.network, n_failures=2)
    job = make_job(shuffle_overlap=True, shuffle_fetch_attempts=3,
                   task_retry_backoff=0.05)
    runner = JobRunner(env, nodes, hdfs, flaky, job)
    result = run(env, runner.run())
    assert flat(result) == expected_counts()
    # Both failures were absorbed at the fetch level, not as whole
    # reduce-attempt retries.
    assert result.counters.value("shuffle", "fetch_retries") == 2
    assert result.counters.value("job", "failed_reduce_attempts") == 0


def test_fetch_attempts_exhausted_fails_reduce_attempts(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    flaky = FlakyShuffleNetwork(cluster.network, n_failures=10**9)
    job = make_job(shuffle_overlap=True, shuffle_fetch_attempts=2,
                   max_task_attempts=2, task_retry_backoff=0.05)
    runner = JobRunner(env, nodes, hdfs, flaky, job)

    def proc():
        yield from runner.run()

    with pytest.raises(MapReduceError, match="reduce partition"):
        run(env, proc())


def test_merge_factor_spills_and_preserves_results(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    baseline, _t = run_job((env, cluster, hdfs, nodes), n_reducers=1)
    spilled, _t = run_job(
        (env, cluster, hdfs, nodes),
        name="wc-merge-bound", n_reducers=1, shuffle_merge_factor=2)
    assert flat(spilled) == flat(baseline) == expected_counts()
    assert spilled.counters.value("shuffle", "merge_passes") >= 1
    assert spilled.counters.value("shuffle", "spilled_bytes") > 0
    assert "merge" in spilled.stats_for("reduce")[0].phases
    assert baseline.counters.value("shuffle", "merge_passes") == 0


def test_merge_factor_validation():
    with pytest.raises(MapReduceError, match="shuffle_merge_factor"):
        make_job(shuffle_merge_factor=1).validate()
    with pytest.raises(MapReduceError, match="shuffle_fetch_attempts"):
        make_job(shuffle_fetch_attempts=0).validate()
    with pytest.raises(MapReduceError, match="shuffle_parallel_copies"):
        make_job(shuffle_parallel_copies=-1).validate()


def test_combiner_shrinks_shuffled_bytes(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    plain, _t = run_job((env, cluster, hdfs, nodes))
    combined, _t = run_job(
        (env, cluster, hdfs, nodes),
        name="wc-combined", combiner=wc_reduce, shuffle_overlap=True)
    assert flat(combined) == flat(plain) == expected_counts()
    assert combined.counters.value("shuffle", "bytes") < \
        plain.counters.value("shuffle", "bytes")
    c_in = combined.counters.value("shuffle", "combine_input_records")
    c_out = combined.counters.value("shuffle", "combine_output_records")
    assert c_in > c_out > 0


def test_overlap_survives_map_retries(world):  # noqa: F811
    """Only winning map attempts commit to the feed, so retried maps
    neither double-feed nor starve the overlapped reducers."""
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    state = {"failures_left": 2}

    def flaky_map(ctx, _offset, line):
        if state["failures_left"] > 0:
            state["failures_left"] -= 1
            raise RuntimeError("transient map failure")
        wc_map(ctx, _offset, line)

    result, _t = run_job(
        (env, cluster, hdfs, nodes),
        name="wc-flaky-maps", mapper=flaky_map, shuffle_overlap=True,
        task_retry_backoff=0.05)
    assert flat(result) == expected_counts()
    assert result.counters.value("job", "failed_map_attempts") == 2


def test_overlap_survives_reduce_retry(world):  # noqa: F811
    """A retried reduce attempt re-reads the append-only feed from the
    start and still sees every map output."""
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    state = {"failures_left": 2}

    def flaky_reduce(ctx, key, values):
        if state["failures_left"] > 0:
            state["failures_left"] -= 1
            raise RuntimeError("transient reduce failure")
        wc_reduce(ctx, key, values)

    result, _t = run_job(
        (env, cluster, hdfs, nodes),
        name="wc-flaky-reduce", reducer=flaky_reduce,
        shuffle_overlap=True, task_retry_backoff=0.05)
    assert flat(result) == expected_counts()
    assert result.counters.value("job", "failed_reduce_attempts") == 2


def test_overlap_with_speculation_results_exact(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", TEXT)
    result, _t = run_job(
        (env, cluster, hdfs, nodes),
        name="wc-overlap-spec", shuffle_overlap=True, speculative=True,
        shuffle_parallel_copies=2)
    assert flat(result) == expected_counts()
    # One committed output per split even if backups ran.
    assert len(result.stats_for("map")) == \
        result.counters.value("job", "splits")
