"""Tests for speculative execution (straggler mitigation)."""

import pytest

from repro.cluster import Cluster, DiskSpec, LinkSpec, NodeSpec
from repro.hdfs import HDFS
from repro.mapreduce import JobConf, JobRunner, TextInputFormat
from repro.sim import Environment

from tests.mapreduce.conftest import run


def straggler_world(slow_factor=20.0):
    """4 equal nodes; tasks landing on node "slow" charge slow_factor x
    the compute (a degraded CPU — the classic speculation target, since
    a disk-bound straggler's replica-local data would just drag its
    backups down too)."""
    env = Environment()
    cluster = Cluster(env)

    def spec():
        return NodeSpec(
            cpus=8, memory=10**9,
            disks=(DiskSpec(bandwidth=10**6, seek_latency=0.001),),
            nic=LinkSpec(bandwidth=10**7, latency=0.0001))

    nodes = [cluster.add_node("slow", spec(), role="compute")]
    nodes += [cluster.add_node(f"fast{i}", spec(), role="compute")
              for i in range(3)]
    hdfs = HDFS(env, cluster.network, block_size=4000, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    # Stash the degradation factor for the mapper to read.
    env._slow_factor = slow_factor
    return env, cluster, hdfs, nodes


TEXT = b"alpha beta gamma\n" * 2000  # ~34 KB -> 9 blocks

BASE_COMPUTE = 0.02


def wc_map(ctx, _o, line):
    for w in line.split():
        ctx.emit(w, 1)
    factor = getattr(ctx.env, "_slow_factor", 1.0) \
        if ctx.node.name == "slow" else 1.0
    ctx.charge(BASE_COMPUTE * factor / 2000)


def wc_reduce(ctx, key, values):
    ctx.emit(key, sum(values))


def run_wc(env, cluster, hdfs, nodes, speculative, slots=1):
    job = JobConf(
        name=f"wc-{speculative}",
        mapper=wc_map,
        reducer=wc_reduce,
        combiner=wc_reduce,
        input_format=TextInputFormat(),
        n_reducers=1,
        input_paths=["/in"],
        map_slots_per_node=slots,
        task_startup=0.0,
        speculative=speculative,
        output_path=f"/out-{speculative}",
    )
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    t0 = env.now
    result = run(env, runner.run())
    return result, env.now - t0


def test_speculation_beats_straggler():
    env, cluster, hdfs, nodes = straggler_world()
    hdfs.store_file_sync("/in/a.txt", TEXT)
    baseline, t_base = run_wc(env, cluster, hdfs, nodes, False)
    spec, t_spec = run_wc(env, cluster, hdfs, nodes, True)
    assert t_spec < t_base
    assert spec.counters.value("job", "speculative_attempts") >= 1


def test_speculation_results_exact_despite_duplicates():
    env, cluster, hdfs, nodes = straggler_world()
    hdfs.store_file_sync("/in/a.txt", TEXT)
    result, _t = run_wc(env, cluster, hdfs, nodes, True)
    got = {k: v for recs in result.outputs.values() for k, v in recs}
    assert got == {b"alpha": 2000, b"beta": 2000, b"gamma": 2000}
    # Exactly one output per split survived.
    assert len(result.stats_for("map")) == \
        result.counters.value("job", "splits")


def test_no_speculation_without_flag():
    env, cluster, hdfs, nodes = straggler_world()
    hdfs.store_file_sync("/in/a.txt", TEXT)
    result, _t = run_wc(env, cluster, hdfs, nodes, False)
    assert result.counters.value("job", "speculative_attempts") == 0


def test_speculation_on_uniform_cluster_rarely_fires():
    env, cluster, hdfs, nodes = straggler_world(slow_factor=1.0)
    hdfs.store_file_sync("/in/a.txt", TEXT)
    result, _t = run_wc(env, cluster, hdfs, nodes, True)
    got = {k: v for recs in result.outputs.values() for k, v in recs}
    assert got == {b"alpha": 2000, b"beta": 2000, b"gamma": 2000}
    # Uniform tasks: nothing exceeds 1.5x the mean by much, so backups
    # are rare (tolerate boundary effects of the last wave).
    assert result.counters.value("job", "speculative_attempts") <= 2


def test_backup_wins_and_original_is_killed():
    """A 20x straggler's backup finishes first: the speculative attempt
    SUCCEEDs, the original is recorded KILLED, and the job counts one
    speculative loss for the dropped original."""
    from repro.obs.history import KILLED, SUCCEEDED

    env, cluster, hdfs, nodes = straggler_world(slow_factor=20.0)
    hdfs.store_file_sync("/in/a.txt", TEXT)
    result, _t = run_wc(env, cluster, hdfs, nodes, True)

    attempts = result.history.attempts_for("map")
    winners = [a for a in attempts
               if a.speculative and a.outcome == SUCCEEDED]
    losers = [a for a in attempts
              if not a.speculative and a.outcome == KILLED]
    assert winners, "no backup attempt won against a 20x straggler"
    assert losers, "the straggling original was never killed"
    # Every winner displaced exactly one original on the slow node.
    assert {a.node for a in losers} == {"slow"}
    assert result.counters.value("job", "speculative_losses") == \
        len(losers) + len(
            [a for a in attempts
             if a.speculative and a.outcome == KILLED])


def test_backup_loses_when_original_finishes_first():
    """With an absurdly low slowdown threshold on a uniform cluster,
    backups launch against healthy tasks and lose: the speculative
    attempt is KILLED, counted under speculative_losses, and results
    stay exact."""
    from repro.obs.history import KILLED

    env, cluster, hdfs, nodes = straggler_world(slow_factor=1.0)
    hdfs.store_file_sync("/in/a.txt", TEXT)
    job = JobConf(
        name="wc-eager-backup",
        mapper=wc_map,
        reducer=wc_reduce,
        input_format=TextInputFormat(),
        n_reducers=1,
        input_paths=["/in"],
        map_slots_per_node=1,
        task_startup=0.0,
        speculative=True,
        speculative_slowdown=0.01,   # everything looks like a straggler
    )
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())

    got = {k: v for recs in result.outputs.values() for k, v in recs}
    assert got == {b"alpha": 2000, b"beta": 2000, b"gamma": 2000}
    killed_backups = [a for a in result.history.attempts_for("map")
                      if a.speculative and a.outcome == KILLED]
    assert killed_backups, "no backup lost to its healthy original"
    assert result.counters.value("job", "speculative_losses") >= \
        len(killed_backups)
    # Exactly one surviving output per split despite the duplicates.
    assert len(result.stats_for("map")) == \
        result.counters.value("job", "splits")


def test_reduce_retry_exhausts_max_task_attempts():
    """A permanently failing reducer burns exactly max_task_attempts
    attempts, each recorded FAILED in the history, then fails the job."""
    import pytest

    from repro.mapreduce import MapReduceError
    from repro.obs.history import FAILED

    env, cluster, hdfs, nodes = straggler_world(slow_factor=1.0)
    hdfs.store_file_sync("/in/a.txt", b"alpha beta\n")

    def bad_reduce(ctx, key, values):
        raise RuntimeError("reduce is broken")

    job = JobConf(
        name="wc-bad-reduce",
        mapper=wc_map,
        reducer=bad_reduce,
        input_format=TextInputFormat(),
        n_reducers=1,
        input_paths=["/in"],
        task_startup=0.0,
        max_task_attempts=3,
        task_retry_backoff=0.1,
    )
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)

    def proc():
        yield from runner.run()

    with pytest.raises(MapReduceError,
                       match="reduce partition 0 failed 3 times"):
        run(env, proc())
    failed = [a for a in runner.history.attempts_for("reduce")
              if a.outcome == FAILED]
    assert len(failed) == 3
