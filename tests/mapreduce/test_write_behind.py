"""Write-behind output commit: overlap, exactly-once, drain barrier."""

import pickle

import pytest

from repro.mapreduce import JobConf, JobRunner, MapReduceError, \
    TextInputFormat
from repro.workloads.dfsio import run_dfsio_write

from tests.mapreduce.conftest import run, world  # noqa: F401 (fixture)


def wc_map(ctx, _offset, line):
    for word in line.split():
        ctx.emit(word, 1)


def wc_reduce(ctx, key, values):
    ctx.emit(key, sum(values))


def make_job(write_behind, **kw):
    defaults = dict(
        name=f"wb-{write_behind}",
        mapper=wc_map,
        reducer=wc_reduce,
        input_format=TextInputFormat(),
        n_reducers=2,
        input_paths=["/in"],
        task_startup=0.0,
        output_path=f"/out-{write_behind}",
        write_behind=write_behind,
    )
    defaults.update(kw)
    return JobConf(**defaults)


def stored_outputs(hdfs, result):
    return {path.rsplit("/", 1)[-1]:
            pickle.loads(hdfs.read_file_sync(path))
            for path in result.output_paths}


def test_write_behind_stores_same_output_as_sync(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"alpha beta\nbeta gamma\n" * 40)

    results = {}
    for write_behind in (False, True):
        job = make_job(write_behind)
        runner = JobRunner(env, nodes, hdfs, cluster.network, job)
        t0 = env.now
        result = run(env, runner.run())
        results[write_behind] = (result, env.now - t0)

    sync, t_sync = results[False]
    wb, t_wb = results[True]
    assert stored_outputs(hdfs, wb) == stored_outputs(hdfs, sync)
    assert len(wb.output_paths) == len(sync.output_paths) == 2
    # the flush overlaps task wind-down, so write-behind never loses
    assert t_wb <= t_sync + 1e-9
    assert wb.counters.value("io", "write_behind_writes") == 2
    assert wb.counters.value("datapath", "write_behind_flushes") == 2
    assert wb.counters.value("datapath", "write_behind_bytes") > 0
    assert sync.counters.value("io", "write_behind_writes") == 0


def test_write_behind_exactly_once_under_retry(world):  # noqa: F811
    """A retried reducer's flushes land last and replace the failed
    attempt's leftovers — stored state is single-copy and correct."""
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"x y\nx z\n")
    state = {"failures_left": 2}

    def flaky_reduce(ctx, key, values):
        if state["failures_left"] > 0:
            state["failures_left"] -= 1
            raise RuntimeError("transient reduce failure")
        ctx.emit(key, sum(values))

    job = make_job(True, reducer=flaky_reduce, n_reducers=1,
                   output_path="/out-retry", task_startup=0.01)
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    assert result.counters.value("job", "failed_reduce_attempts") == 2
    assert len(result.output_paths) == 1
    got = dict(pickle.loads(hdfs.read_file_sync(result.output_paths[0])))
    assert got == {b"x": 2, b"y": 1, b"z": 1}


def test_write_behind_exactly_once_under_speculation(world):  # noqa: F811
    """Speculative duplicate attempts submit to the same output paths;
    per-path serialization + idempotent replace keep one final copy."""
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"alpha beta gamma\n" * 200)
    job = make_job(True, n_reducers=1, speculative=True,
                   output_path="/out-spec", map_slots_per_node=1)
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    assert len(result.output_paths) == 1
    got = dict(pickle.loads(hdfs.read_file_sync(result.output_paths[0])))
    assert got == {b"alpha": 200, b"beta": 200, b"gamma": 200}
    # exactly one committed output per split despite any duplicates
    assert len(result.stats_for("map")) == \
        result.counters.value("job", "splits")


def test_write_behind_drain_blocks_job_completion(world):  # noqa: F811
    """JobResult.end covers every flush: nothing commits before the
    drain barrier has landed all submitted payloads."""
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"x y z\n" * 10)
    job = make_job(True, n_reducers=1, output_path="/out-barrier")
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    # at result.end the output file is already fully stored
    assert result.end == env.now
    assert pickle.loads(hdfs.read_file_sync(result.output_paths[0]))
    assert result.counters.value("datapath", "write_behind_flushes") >= 1


def test_write_behind_dfsio_map_only(world):  # noqa: F811
    """Map-only deferred user writes (TestDFSIO) go through the flusher
    and store identical bytes, no slower than the sync path."""
    env, cluster, hdfs, nodes = world

    def drive(write_behind):
        suffix = "wb" if write_behind else "sync"
        gen = run_dfsio_write(
            env, nodes, hdfs, cluster.network, n_files=2,
            bytes_per_file=400,
            control_path=f"/control-{suffix}",
            write_behind=write_behind)
        result, elapsed, _rate = run(env, gen)
        files = {f"/dfsio/part-{i:04d}":
                 hdfs.read_file_sync(f"/dfsio/part-{i:04d}")
                 for i in range(2)}
        return result, elapsed, files

    sync_result, t_sync, sync_files = drive(write_behind=False)
    wb_result, t_wb, wb_files = drive(write_behind=True)
    assert wb_files == sync_files
    assert all(len(data) == 400 for data in wb_files.values())
    assert t_wb <= t_sync + 1e-9
    assert wb_result.counters.value("io", "write_behind_writes") == 2
    assert sync_result.counters.value("io", "write_behind_writes") == 0


def test_write_behind_knob_validation():
    job = make_job(True, write_behind_max_inflight=-1)
    with pytest.raises(MapReduceError, match="write_behind_max_inflight"):
        job.validate()
