"""Observability test fixtures (reuses the MapReduce world shape)."""

import pytest

from repro.cluster import Cluster
from repro.hdfs import HDFS
from repro.sim import Environment

from tests.mapreduce.conftest import small_spec


@pytest.fixture
def world():
    """4 compute/data nodes; block size 200 B; replication 1."""
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(4)]
    hdfs = HDFS(env, cluster.network, block_size=200, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    return env, cluster, hdfs, nodes
