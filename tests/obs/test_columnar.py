"""Columnar recording core: storage units and twin-world equivalence.

The twin-world tests are the v2 acceptance bar: the frozen v1 recorders
(``repro.obs._legacy``) and the columnar rewrite drive the *same*
workload, and the exported traces must be **byte-identical** while
report-level numbers agree to 1e-9.
"""

import json

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.hdfs import HDFS
from repro.mapreduce import JobConf, JobRunner, TextInputFormat
from repro.obs._legacy import LegacyMonitor, LegacyTracer
from repro.obs.columnar import ColumnarLog, Table
from repro.obs.trace import TraceSession, Tracer, attach_tracer, \
    chrome_events
from repro.sim import Environment
from repro.sim.columns import FloatColumn
from repro.sim.stats import Monitor

from tests.mapreduce.conftest import run, small_spec


# --------------------------------------------------------------------------
# Storage units
# --------------------------------------------------------------------------

def test_float_column_roundtrip_across_chunks():
    col = FloatColumn(chunk=8)
    values = [float(i) * 0.5 for i in range(29)]
    for v in values[:20]:
        col.append(v)
    col.extend(values[20:])
    assert len(col) == 29
    assert col.tolist() == values
    assert col.last() == values[-1]
    np.testing.assert_array_equal(col.array(), np.array(values))


def test_float_column_buffer_identity_survives_flush():
    """Hot paths cache ``buf``; flush must clear it in place."""
    col = FloatColumn(chunk=4)
    buf = col.buf
    for v in range(10):
        col.append(float(v))
    assert col.buf is buf
    buf.extend((10.0, 11.0))
    assert col.tolist() == [float(v) for v in range(12)]


def test_float_column_extend_array_is_one_chunk():
    col = FloatColumn(chunk=4)
    col.append(1.0)
    col.extend_array(np.arange(100, dtype=np.float64))
    assert len(col) == 101
    assert col.tolist() == [1.0] + [float(i) for i in range(100)]
    assert col.nbytes >= 101 * 8


def test_table_rows_and_ingest():
    table = Table(width=3, chunk_rows=4)
    table.append_row(1.0, 2.0, 3.0)
    table.ingest(np.array([4.0, 7.0]), np.array([5.0, 8.0]),
                 np.array([6.0, 9.0]))
    assert len(table) == 3
    np.testing.assert_array_equal(
        table.rows(), [[1, 2, 3], [4, 5, 6], [7, 8, 9]])
    with pytest.raises(ValueError):
        table.ingest(np.array([1.0]), np.array([1.0, 2.0]),
                     np.array([1.0]))


def test_columnar_log_interns_keys_once():
    log = ColumnarLog()
    a = log.key_id("read", "task.phase", "n0.s0")
    b = log.key_id("read", "task.phase", "n0.s0")
    c = log.key_id("read", "task.phase", "n0.s1")
    assert a == b != c
    assert log.key_list[a] == ("read", "task.phase", "n0.s0")
    assert log.tracks() == {"n0.s0", "n0.s1"}


# --------------------------------------------------------------------------
# Twin-world equivalence
# --------------------------------------------------------------------------

def _drive(tracer, env):
    """One deterministic event mix through either tracer's public API."""
    def proc():
        with tracer.span("outer", cat="test", track="n0.s0", idx=1):
            yield env.timeout(2)
            with tracer.span("inner", cat="test.phase", track="n0.s0"):
                yield env.timeout(3)
        tracer.instant("marker", track="n0.s0", why="because")
        for i in range(100):
            tracer.counter("queue", float(i % 7))
            yield env.timeout(0.25)
        with tracer.span("tail", cat="test", track="n1.s0") as handle:
            handle.set(bytes=4096)
            yield env.timeout(1)

    env.process(proc())
    env.run()


def test_twin_tracers_export_identical_events():
    env1 = Environment()
    legacy = attach_tracer(env1, LegacyTracer(env1))
    _drive(legacy, env1)

    env2 = Environment()
    v2 = attach_tracer(env2)
    assert isinstance(v2, Tracer)
    _drive(v2, env2)

    # the v1-shaped views agree exactly...
    assert [(s.name, s.cat, s.track, s.start, s.end, s.args)
            for s in legacy.spans] == \
        [(s.name, s.cat, s.track, s.start, s.end, s.args)
         for s in v2.spans]
    assert legacy.instants == v2.instants
    assert legacy.counter_samples == v2.counter_samples
    # ...and the exported event stream is byte-identical
    ev1 = chrome_events(legacy, pid=3, process_name="twin")
    ev2 = chrome_events(v2, pid=3, process_name="twin")
    assert json.dumps(ev1, sort_keys=True) == json.dumps(ev2, sort_keys=True)


def _word_count_world():
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(4)]
    hdfs = HDFS(env, cluster.network, block_size=200, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    return env, cluster, hdfs, nodes


def _mapper(ctx, _offset, line):
    ctx.emit(len(line.split()), 1)
    ctx.charge(1e-6 * len(line), phase="convert")


def _reducer(ctx, key, values):
    ctx.emit(key, sum(values))


def _run_traced_job(path, legacy: bool):
    env, cluster, hdfs, nodes = _word_count_world()
    if legacy:
        attach_tracer(env, LegacyTracer(env))
    session = TraceSession(str(path))
    session.observe(env, "twin", nodes=nodes, hdfs=hdfs,
                    network=cluster.network)
    hdfs.store_file_sync("/in/text.txt", b"one two three\n" * 60)
    conf = JobConf(
        name="twin", mapper=_mapper, reducer=_reducer,
        input_format=TextInputFormat(), n_reducers=2,
        input_paths=["/in"], map_slots_per_node=2, task_startup=0.01)
    runner = JobRunner(env, nodes, hdfs, cluster.network, conf)
    result = run(env, runner.run())
    session.save()
    return result


@pytest.mark.parametrize("suffix", [".json", ".jsonl"])
def test_twin_worlds_export_byte_identical_traces(tmp_path, suffix):
    """A full mapreduce run traced by the frozen v1 recorder and by the
    columnar v2 recorder writes byte-identical trace files."""
    p1 = tmp_path / f"legacy{suffix}"
    p2 = tmp_path / f"columnar{suffix}"
    r1 = _run_traced_job(p1, legacy=True)
    r2 = _run_traced_job(p2, legacy=False)
    assert r1.duration == r2.duration  # instrumentation moved no event
    assert p1.read_bytes() == p2.read_bytes()


def test_twin_monitors_agree_to_1e9():
    """Monitor (columnar) and LegacyMonitor agree on every derived
    statistic over an identical irregular sample stream."""
    env1, env2 = Environment(), Environment()
    v1 = LegacyMonitor(env1, "m")
    v2 = Monitor(env2, "m")

    def feed(env, mon):
        def proc():
            for i in range(500):
                mon.record((i * 7919 % 1000) / 33.0)
                yield env.timeout(0.1 + (i % 13) * 0.01)
        env.process(proc())
        env.run()

    feed(env1, v1)
    feed(env2, v2)
    assert v2.times == v1.times
    assert v2.values == v1.values
    assert v2.mean == pytest.approx(v1.mean, abs=1e-9)
    assert v2.minimum == pytest.approx(v1.minimum, abs=1e-9)
    assert v2.maximum == pytest.approx(v1.maximum, abs=1e-9)
    assert v2.stdev == pytest.approx(v1.stdev, abs=1e-9)
    assert v2.time_average(env2.now) == \
        pytest.approx(v1.time_average(env1.now), abs=1e-9)


# --------------------------------------------------------------------------
# In-flight spans at dump time
# --------------------------------------------------------------------------

def test_inflight_spans_export_closed_at_dump_clock():
    env = Environment()
    tracer = attach_tracer(env)

    def proc():
        handle = tracer.span("stuck", cat="test", track="n0.s0",
                             task_id="m7").__enter__()
        with tracer.span("done", cat="test", track="n1.s0"):
            yield env.timeout(2)
        yield env.timeout(3)
        del handle  # never exited: still open at dump time

    env.process(proc())
    env.run()

    (stuck,) = tracer.inflight_spans()
    assert (stuck.name, stuck.start, stuck.end) == ("stuck", 0.0, 5.0)
    assert stuck.args["inflight"] is True
    assert stuck.args["task_id"] == "m7"

    events = chrome_events(tracer, pid=1, process_name="p")
    spans = [e for e in events if e.get("ph") == "X"]
    by_name = {e["name"]: e for e in spans}
    assert by_name["stuck"]["dur"] == pytest.approx(5e6)
    assert by_name["stuck"]["args"]["inflight"] is True
    assert "inflight" not in by_name["done"].get("args", {})
    # closing the span afterwards removes it from the in-flight set
    ts = sorted(e["ts"] for e in spans)
    assert ts == sorted(ts)


def test_inflight_span_not_duplicated_after_close():
    env = Environment()
    tracer = attach_tracer(env)
    with tracer.span("s", track="t"):
        pass
    assert tracer.inflight_spans() == []
    events = chrome_events(tracer)
    assert len([e for e in events if e.get("ph") == "X"]) == 1
