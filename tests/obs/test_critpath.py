"""Critical-path extraction and the spans-only Fig. 7 decomposition.

The acceptance bar: on a run without speculative attempts, the phase
decomposition computed from spans alone matches the bench harness's
``JobResult.phase_means`` bookkeeping within 1e-9, and the critical
path is a gap-free chain covering the whole job span.
"""

import pytest

from repro.cluster import Cluster
from repro.hdfs import HDFS
from repro.mapreduce import JobConf, JobRunner, TextInputFormat
from repro.obs.critpath import (
    EPS,
    CriticalPath,
    SpanRec,
    critical_path,
    decomposition_rows,
    phase_decomposition,
    spans_from_trace,
)
from repro.obs.trace import TraceSession, attach_tracer, load_trace
from repro.sim import Environment

from tests.mapreduce.conftest import run, small_spec


def _world():
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(4)]
    hdfs = HDFS(env, cluster.network, block_size=200, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    return env, cluster, hdfs, nodes


def _mapper(ctx, _offset, line):
    ctx.emit(len(line.split()), 1)
    ctx.charge(2e-6 * len(line), phase="convert")


def _reducer(ctx, key, values):
    ctx.emit(key, sum(values))


def _traced_job(session=None):
    env, cluster, hdfs, nodes = _world()
    if session is not None:
        session.observe(env, "cp", nodes=nodes, hdfs=hdfs,
                        network=cluster.network)
        tracer = env.tracer
    else:
        tracer = attach_tracer(env)
    hdfs.store_file_sync("/in/text.txt", b"alpha beta gamma delta\n" * 80)
    conf = JobConf(
        name="cp", mapper=_mapper, reducer=_reducer,
        input_format=TextInputFormat(), n_reducers=2,
        input_paths=["/in"], map_slots_per_node=2, task_startup=0.01)
    runner = JobRunner(env, nodes, hdfs, cluster.network, conf)
    result = run(env, runner.run())
    return result, tracer


def test_decomposition_matches_job_result_to_1e9():
    """Spans alone reproduce the bench's phase_means bookkeeping — the
    validation the Fig. 7 decomposition bench relies on."""
    result, tracer = _traced_job()
    for kind in ("map", "reduce"):
        from_spans = phase_decomposition(tracer.spans, kind=kind)
        from_stats = result.phase_means(kind)
        assert set(from_spans) == set(from_stats)
        for phase, mean in from_stats.items():
            assert from_spans[phase] == pytest.approx(mean, abs=1e-9), \
                f"{kind}.{phase}: spans {from_spans[phase]} != " \
                f"stats {mean}"


def test_decomposition_rows_are_ranked_and_labeled():
    _result, tracer = _traced_job()
    columns, rows, note = decomposition_rows(tracer.spans, kind="map")
    assert columns == ["map phase", "mean s/task", "device"]
    means = [row[1] for row in rows]
    assert means == sorted(means, reverse=True)
    assert {row[0] for row in rows} >= {"read", "convert"}
    assert all(row[2] for row in rows)


def test_critical_path_is_gap_free_and_covers_the_job():
    result, tracer = _traced_job()
    cp = critical_path(tracer.spans)
    assert cp.start == result.start
    assert cp.end == result.end
    assert cp.segments, "a finished job must yield a non-empty path"
    assert cp.segments[0].start == pytest.approx(cp.start, abs=EPS)
    assert cp.segments[-1].end == pytest.approx(cp.end, abs=EPS)
    for prev, nxt in zip(cp.segments, cp.segments[1:]):
        assert nxt.start == pytest.approx(prev.end, abs=1e-9), \
            f"gap between {prev} and {nxt}"
    assert sum(s.duration for s in cp.segments) == \
        pytest.approx(cp.total, abs=1e-9)


def test_bottleneck_rows_account_for_the_whole_path():
    _result, tracer = _traced_job()
    cp = critical_path(tracer.spans)
    columns, rows, note = cp.bottleneck_rows(top=100)
    assert columns == ["phase", "device", "seconds", "% of path"]
    assert sum(row[3] for row in rows) == pytest.approx(100.0, abs=0.2)
    seconds = [row[2] for row in rows]
    assert seconds == sorted(seconds, reverse=True)
    assert "critical path" in note


def test_critical_path_from_exported_trace(tmp_path):
    """The file-based path (microsecond-rounded timestamps) agrees with
    the in-memory analysis to export resolution."""
    path = tmp_path / "cp.json"
    session = TraceSession(str(path))
    _result, tracer = _traced_job(session)
    session.save()

    spans = spans_from_trace(load_trace(str(path)))
    live = critical_path(tracer.spans)
    filed = critical_path(spans)
    assert filed.total == pytest.approx(live.total, abs=1e-6)
    assert {s.label for s in filed.segments} == \
        {s.label for s in live.segments}
    for kind in ("map", "reduce"):
        a = phase_decomposition(tracer.spans, kind=kind)
        b = phase_decomposition(spans, kind=kind)
        for phase in a:
            assert b[phase] == pytest.approx(a[phase], abs=1e-6)


def test_spans_from_trace_requires_run_choice(tmp_path):
    path = tmp_path / "two.json"
    session = TraceSession(str(path))
    for label in ("runA", "runB"):
        env = Environment()
        session.observe(env, label)
        tracer = env.tracer
        with tracer.span("s", cat="job", track="job"):
            pass
        env.run()
    session.save()
    doc = load_trace(str(path))
    with pytest.raises(ValueError, match="runA"):
        spans_from_trace(doc)
    assert spans_from_trace(doc, run="runB")
    with pytest.raises(ValueError, match="runB"):
        spans_from_trace(doc, run="nope")


def test_synthetic_dag_attributes_every_blocking_edge():
    """A hand-built span DAG exercises each edge label: split claim,
    shuffle ready, write drain, startup, overhead, setup."""
    spans = [
        SpanRec("job", "job", "job", 0.0, 10.0, {"job": "j"}),
        SpanRec("map_0", "task.map", "n0.s0", 1.0, 4.0,
                {"task_id": "m0"}),
        SpanRec("read", "task.phase", "n0.s0", 1.0, 2.0),
        SpanRec("convert", "task.phase", "n0.s0", 2.0, 3.5),
        SpanRec("map_1", "task.map", "n1.s0", 4.5, 7.0,
                {"task_id": "m1"}),
        SpanRec("read", "task.phase", "n1.s0", 4.5, 7.0),
        SpanRec("reduce_0", "task.reduce", "n0.r0", 7.5, 9.0,
                {"task_id": "r0"}),
        SpanRec("shuffle", "task.phase", "n0.r0", 7.5, 8.0),
        SpanRec("write", "task.phase", "n0.r0", 8.0, 9.0),
    ]
    cp = critical_path(spans)
    chain = [(s.label, s.start, s.end) for s in cp.segments]
    assert chain == [
        ("setup.splits", 0.0, 1.0),
        ("read", 1.0, 2.0),
        ("convert", 2.0, 3.5),
        ("overhead", 3.5, 4.0),
        ("wait.split_claim", 4.0, 4.5),
        ("read", 4.5, 7.0),
        ("wait.shuffle_ready", 7.0, 7.5),
        ("shuffle", 7.5, 8.0),
        ("write", 8.0, 9.0),
        ("wait.write_drain", 9.0, 10.0),
    ]
    buckets = cp.device_buckets()
    assert buckets["storage"] == pytest.approx(1.0 + 2.5 + 1.0 + 1.0)
    assert buckets["network"] == pytest.approx(0.5 + 0.5)
    assert buckets["scheduler"] == pytest.approx(0.5)


def test_empty_and_taskless_inputs():
    assert critical_path([]).segments == []
    only_job = [SpanRec("job", "job", "job", 2.0, 5.0, {"job": "naive"})]
    cp = critical_path(only_job)
    assert isinstance(cp, CriticalPath)
    assert [(s.label, s.duration) for s in cp.segments] == [("job", 3.0)]
    assert phase_decomposition(only_job, kind="map") == {}
