"""Edge-case tests for the streaming log-bucketed histogram."""

import math
import random

import pytest

from repro.obs.hist import NBUCKETS, LogHistogram


def test_empty_histogram_raises_with_name():
    hist = LogHistogram("lat")
    assert len(hist) == 0
    with pytest.raises(ValueError, match="lat"):
        hist.mean
    with pytest.raises(ValueError, match="lat"):
        hist.quantile(0.5)
    with pytest.raises(ValueError, match="lat"):
        hist.summary()


def test_single_sample_is_exact_at_every_quantile():
    hist = LogHistogram("one")
    hist.observe(0.125)
    for q in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert hist.quantile(q) == 0.125
    assert hist.summary() == {
        "count": 1.0, "mean": 0.125, "p50": 0.125, "p90": 0.125,
        "p99": 0.125, "max": 0.125}


def test_all_equal_samples_are_exact():
    hist = LogHistogram("same")
    for _ in range(1000):
        hist.observe(3.7)
    assert hist.mean == pytest.approx(3.7)
    for q in (0.01, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == 3.7
    assert hist.min == hist.max == 3.7


def test_zero_samples_count_and_rank_first():
    hist = LogHistogram("zeros")
    for _ in range(90):
        hist.observe(0.0)
    for _ in range(10):
        hist.observe(5.0)
    assert hist.zero_count == 90
    assert hist.quantile(0.5) == 0.0
    assert hist.quantile(0.95) == 5.0
    assert hist.max == 5.0


def test_rejects_negative_nan_and_inf():
    hist = LogHistogram("bad")
    for value in (-1.0, float("nan"), float("inf")):
        with pytest.raises(ValueError):
            hist.observe(value)
    assert len(hist) == 0


def test_relative_error_is_bounded():
    """Every estimate sits in the sample's bucket: < 1/SUBBUCKETS
    relative error for mid-range values."""
    hist = LogHistogram("err")
    for exp in range(-20, 20):
        value = math.ldexp(1.37, exp)
        solo = LogHistogram("solo")
        solo.observe(value)
        solo.observe(value * 2)  # widen [min, max] so clamping can't help
        assert solo.quantile(0.25) == pytest.approx(value, rel=0.02)
        hist.observe(value)
    assert len(hist) == 40


def test_merge_of_disjoint_ranges():
    lo = LogHistogram("lo")
    hi = LogHistogram("hi")
    for _ in range(100):
        lo.observe(1e-6)
        hi.observe(1e3)
    lo.merge(hi)
    assert len(lo) == 200
    assert lo.min == 1e-6
    assert lo.max == 1e3
    assert lo.quantile(0.25) == pytest.approx(1e-6, rel=0.02)
    assert lo.quantile(0.75) == pytest.approx(1e3, rel=0.02)
    assert lo.total == pytest.approx(100 * 1e-6 + 100 * 1e3)


def test_merge_with_empty_keeps_extrema():
    hist = LogHistogram("a")
    hist.observe(2.0)
    hist.merge(LogHistogram("empty"))
    assert hist.min == hist.max == 2.0
    assert len(hist) == 1


def test_quantiles_monotone_under_randomized_inputs():
    rng = random.Random(20260808)
    for trial in range(20):
        hist = LogHistogram(f"rand{trial}")
        samples = []
        for _ in range(rng.randrange(1, 500)):
            value = rng.choice((
                0.0,
                rng.random() * 1e-6,
                rng.random(),
                rng.random() * 1e6,
                rng.expovariate(1.0),
            ))
            samples.append(value)
            hist.observe(value)
        qs = [hist.quantile(q) for q in
              (0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs), f"non-monotone quantiles: {qs}"
        assert hist.quantile(0.5) <= hist.quantile(0.9) \
            <= hist.quantile(0.99) <= hist.max
        assert hist.min <= qs[0] and qs[-1] <= hist.max
        assert hist.mean == pytest.approx(sum(samples) / len(samples))


def test_fixed_memory_footprint():
    """A million observations allocate nothing beyond the bucket array."""
    hist = LogHistogram("fixed")
    base = hist.counts.nbytes
    assert base == NBUCKETS * 8
    for i in range(10_000):
        hist.observe((i % 97 + 1) * 1e-3)
    assert hist.counts.nbytes == base
