"""Tests for the Hadoop-style job history."""

import json

from repro.obs.history import (
    FAILED,
    KILLED,
    SUCCEEDED,
    JobHistory,
    TaskAttempt,
)


def _attempt(i, **kw):
    defaults = dict(attempt_id=f"j-m-{i:04d}", kind="map", node="n0",
                    start=float(i))
    defaults.update(kw)
    return TaskAttempt(**defaults)


def test_attempt_duration_and_phase_totals():
    a = _attempt(1, end=5.0,
                 spans=[("read", 1.0, 2.0), ("convert", 2.0, 4.0),
                        ("read", 4.0, 4.5)])
    assert a.duration == 4.0
    assert a.phase_totals() == {"read": 1.5, "convert": 2.0}


def test_history_records_and_summarises():
    h = JobHistory("job", start=0.0)
    h.record(_attempt(1, end=2.0, outcome=SUCCEEDED,
                      locality="node_local"))
    h.record(_attempt(2, end=3.0, outcome=FAILED, error="IOError()",
                      locality="remote"))
    h.record(_attempt(3, end=4.0, outcome=KILLED, speculative=True,
                      locality="remote"))
    h.record(_attempt(4, kind="reduce", partition=0, end=6.0,
                      outcome=SUCCEEDED))
    h.finish(6.0)

    assert len(h.attempts_for("map")) == 3
    assert [a.attempt_id for a in h.successful("map")] == ["j-m-0001"]
    assert len(h.successful()) == 2

    summary = h.summary()
    assert summary["attempts"]["map"] == {
        "failed": 1, "killed": 1, "speculative": 1, "succeeded": 1}
    assert summary["attempts"]["reduce"] == {"succeeded": 1}
    assert summary["locality"] == {"node_local": 1, "remote": 2}
    assert summary["end"] == 6.0


def test_history_write_is_deterministic_json(tmp_path):
    def build():
        h = JobHistory("job", start=0.0)
        h.record(_attempt(1, end=2.0, outcome=SUCCEEDED,
                          spans=[("read", 0.0, 1.0)],
                          counters={"task": {"records": 3}}))
        h.finish(2.0)
        return h

    a, b = tmp_path / "a.jhist", tmp_path / "b.jhist"
    build().write(str(a))
    build().write(str(b))
    assert a.read_bytes() == b.read_bytes()

    doc = json.loads(a.read_text())
    assert doc["job"] == "job"
    (attempt,) = doc["attempts"]
    assert attempt["spans"] == [["read", 0.0, 1.0]]
    assert attempt["counters"] == {"task": {"records": 3}}
