"""End-to-end observability tests: traced jobs, histories, bench traces."""

import pytest

from repro import costs
from repro.mapreduce import JobConf, JobRunner, TextInputFormat
from repro.obs.history import SUCCEEDED
from repro.obs.report import render_report, validate_trace
from repro.obs.trace import TraceSession, attach_tracer, load_trace
from repro.workloads.solutions import build_world, run_solution

from tests.mapreduce.conftest import run


@pytest.fixture(autouse=True)
def _reset_scale():
    yield
    costs.reset_scale()


def _mapper(ctx, _offset, line):
    ctx.emit(len(line.split()), 1)
    ctx.charge(1e-6 * len(line), phase="convert")


def _reducer(ctx, key, values):
    ctx.emit(key, sum(values))


def _job(**kw):
    defaults = dict(
        name="traced", mapper=_mapper, reducer=_reducer,
        input_format=TextInputFormat(), n_reducers=2,
        input_paths=["/in"], map_slots_per_node=2, task_startup=0.01)
    defaults.update(kw)
    return JobConf(**defaults)


def test_job_history_and_spans(world):
    env, cluster, hdfs, nodes = world
    tracer = attach_tracer(env)
    hdfs.store_file_sync("/in/text.txt", b"one two three\n" * 60)
    runner = JobRunner(env, nodes, hdfs, cluster.network, _job())
    result = run(env, runner.run())

    history = result.history
    assert history is not None
    assert history.end == result.end
    n_splits = result.counters.value("job", "splits")

    # one successful attempt per split, each fully described
    succeeded = history.successful("map")
    assert len(succeeded) == n_splits
    for attempt in succeeded:
        assert attempt.node in {n.name for n in nodes}
        assert attempt.split and "#" in attempt.split
        assert attempt.locality in ("node_local", "remote", "any")
        assert attempt.end > attempt.start
        assert "read" in attempt.phase_totals()
        assert attempt.counters
    assert len(history.successful("reduce")) == 2

    # exactly one traced map span per attempt, on a per-slot track
    map_spans = [s for s in tracer.spans if s.cat == "task.map"]
    assert len(map_spans) == len(history.attempts_for("map"))
    for span in map_spans:
        assert span.args["node"] in {n.name for n in nodes}
        assert "#" in span.args["split"]
        assert ".s" in span.track
    # phase child spans nest inside their task span
    for phase in (s for s in tracer.spans if s.cat == "task.phase"):
        parent = next(s for s in map_spans + [
            s for s in tracer.spans if s.cat == "task.reduce"]
            if s.track == phase.track
            and s.start <= phase.start and phase.end <= s.end)
        assert parent is not None
    # the whole job is wrapped in one span
    (job_span,) = [s for s in tracer.spans if s.cat == "job"]
    assert job_span.start == result.start
    assert job_span.end == result.end


def test_untraced_job_records_no_spans(world):
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/text.txt", b"one two three\n" * 20)
    runner = JobRunner(env, nodes, hdfs, cluster.network, _job())
    result = run(env, runner.run())
    assert not hasattr(env, "tracer")
    # stats still carry spans (tasks record them regardless of tracing)
    assert all(s.spans for s in result.task_stats)
    assert result.phase_means("map")["read"] > 0


def _run_scidp(path):
    world = build_world(n_timesteps=2, shape=(2, 16, 16))
    session = TraceSession(str(path))
    session.observe_world(world, "fig5@2")
    run_solution(world, "scidp")
    session.save()
    return world, session


def test_scidp_world_trace_end_to_end(tmp_path):
    path = tmp_path / "fig5.json"
    world, session = _run_scidp(path)
    assert validate_trace(str(path)) == []

    doc = load_trace(str(path))
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    map_spans = [e for e in spans if e.get("cat") == "task.map"]
    assert map_spans
    node_names = {n.name for n in world.nodes}
    for ev in map_spans:
        assert ev["args"]["node"] in node_names
        assert "#" in ev["args"]["split"]
        assert ev["args"]["locality"] in ("node_local", "remote", "any")
    # map tasks decompose into read/convert/plot phase spans
    phase_names = {e["name"] for e in spans
                   if e.get("cat") == "task.phase"}
    assert {"read", "convert", "plot"} <= phase_names

    # per-OST and per-NIC utilisation rows ride along
    devices = {row["device"] for row in doc["deviceMetrics"]}
    assert any(d.startswith("ost") for d in devices)
    assert any(d.endswith(".tx") for d in devices)
    for row in doc["deviceMetrics"]:
        assert 0.0 <= row["utilization"] <= 1.0

    # and the report renders a timeline + device table from the file
    out = render_report(str(path), width=48)
    assert "fig5@2" in out
    assert "device utilisation" in out
    assert "ost0" in out


def test_shuffle_counters_in_trace_and_report(world, tmp_path):
    """A shuffled job surfaces per-job shuffle rows in the trace file,
    copy-phase spans on the timeline, and a shuffle table in the report."""
    env, cluster, hdfs, nodes = world
    path = tmp_path / "shuffle.json"
    session = TraceSession(str(path))
    session.observe(env, "shuffle@demo", nodes=nodes, hdfs=hdfs,
                    network=cluster.network)
    hdfs.store_file_sync("/in/text.txt", b"one two three two one\n" * 80)
    # A dotted job name exercises the counter-key round trip.
    job = _job(name="wc.shuffle", combiner=_reducer, shuffle_overlap=True,
               shuffle_parallel_copies=4)
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    session.save()

    assert validate_trace(str(path)) == []
    doc = load_trace(str(path))
    (row,) = [d for d in doc["deviceMetrics"] if "shuffle_job" in d]
    assert row["shuffle_job"] == "wc.shuffle"
    assert row["bytes_moved"] == result.counters.value("shuffle", "bytes")
    assert row["shuffle_fetches"] == \
        result.counters.value("shuffle", "fetches")
    assert row["combine_input_records"] > row["combine_output_records"] > 0

    # one copy-phase span per reducer replaces the barrier-mode shuffle
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    phase_names = [e["name"] for e in spans
                   if e.get("cat") == "task.phase"]
    assert phase_names.count("copy") == 2
    assert "shuffle" not in phase_names

    out = render_report(str(path), width=48)
    assert "shuffle" in out
    assert "wc.shuffle" in out
    assert "combine in/out" in out


def test_scidp_world_trace_is_deterministic(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    _run_scidp(a)
    _run_scidp(b)
    assert a.read_bytes() == b.read_bytes()
