"""Tests for the metrics registry and device utilisation sampling."""

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    attach_metrics,
    metrics_of,
)
from repro.sim import Environment
from repro.sim.resources import SharedBandwidth


def test_counter_monotonic():
    reg = MetricsRegistry(Environment())
    c = reg.counter("bytes")
    c.inc(10)
    c.inc()
    assert c.value == 11
    with pytest.raises(ValueError):
        c.inc(-1)
    assert reg.counter("bytes") is c


def test_gauge_time_average():
    env = Environment()
    reg = attach_metrics(env)
    g = reg.gauge("load")

    def proc():
        g.set(0.0)
        yield env.timeout(4)
        g.set(10.0)
        yield env.timeout(4)

    env.process(proc())
    env.run()
    assert g.last == 10.0
    assert g.time_average() == pytest.approx(5.0)


def test_histogram_quantiles():
    h = Histogram("lat")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    assert h.count == 4
    assert h.mean == 2.5
    assert h.quantile(0.0) == 1.0
    assert h.quantile(0.5) == 2.0
    assert h.quantile(1.0) == 4.0
    assert h.summary()["p95"] == 4.0
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("empty").mean


def test_watch_pipe_samples_in_flight_on_membership_changes():
    env = Environment()
    reg = attach_metrics(env)
    pipe = SharedBandwidth(env, capacity=100.0, name="nic")
    reg.watch_pipe(pipe)

    def proc():
        a = pipe.transfer(100)   # alone: 1s
        b = pipe.transfer(100)
        yield a
        yield b

    env.process(proc())
    env.run()
    monitors = dict(reg.device_monitors())
    mon = monitors["nic"]
    # initial seed, two admissions, two completions
    assert mon.values[0] == 0.0
    assert max(mon.values) == 2.0
    assert mon.values[-1] == 0.0
    assert mon.time_average() > 0.0


def test_watch_pipe_is_idempotent_and_names_anonymous_pipes():
    env = Environment()
    reg = MetricsRegistry(env)
    named = SharedBandwidth(env, capacity=1.0, name="nic")
    anon = SharedBandwidth(env, capacity=1.0)
    reg.watch_pipe(named)
    reg.watch_pipe(named)
    reg.watch_pipe(anon)
    labels = [label for label, _m in reg.device_monitors()]
    assert labels == ["nic", "pipe1"]


def test_device_rows_report_bytes_and_utilization():
    env = Environment()
    reg = attach_metrics(env)
    pipe = SharedBandwidth(env, capacity=100.0, name="disk")
    reg.watch_pipe(pipe)

    def proc():
        yield pipe.transfer(100)   # busy [0, 1)
        yield env.timeout(1)       # idle [1, 2)

    env.process(proc())
    env.run()
    (row,) = reg.device_rows()
    assert row["device"] == "disk"
    assert row["capacity_bps"] == 100.0
    assert row["bytes_moved"] == 100.0
    assert row["busy_seconds"] == pytest.approx(1.0)
    assert row["utilization"] == pytest.approx(0.5)
    assert row["mean_in_flight"] == pytest.approx(0.5)


def test_unwatched_pipe_has_no_observer_overhead():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0)
    assert pipe.observer is None

    def proc():
        yield pipe.transfer(100)

    env.process(proc())
    env.run()
    assert pipe.observer is None   # nothing attached one behind our back


def test_attach_metrics_idempotent_and_metrics_of():
    env = Environment()
    assert metrics_of(env) is None
    reg = attach_metrics(env)
    assert attach_metrics(env) is reg
    assert metrics_of(env) is reg


def test_as_dict_snapshot():
    env = Environment()
    reg = attach_metrics(env)
    reg.counter("n").inc(2)
    reg.gauge("g").set(1.0)
    reg.histogram("h").observe(3.0)
    snap = reg.as_dict()
    assert snap["counters"] == {"n": 2.0}
    assert snap["gauges"]["g"]["last"] == 1.0
    assert snap["histograms"]["h"]["count"] == 1.0
    assert snap["devices"] == []
