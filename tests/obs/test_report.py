"""Tests for the ASCII report renderer and trace validation."""

import json

from repro.obs.report import render_report, render_timeline, validate_trace
from repro.obs.trace import TraceSession
from repro.sim import Environment


def _session_trace(tmp_path, suffix=".json"):
    path = tmp_path / f"trace{suffix}"
    session = TraceSession(str(path))
    env = Environment()
    tracer = session.observe(env, "demo")

    def proc():
        with tracer.span("map", cat="task.map", track="n0.s0"):
            with tracer.span("read", cat="task.phase", track="n0.s0"):
                yield env.timeout(2)
            with tracer.span("plot", cat="task.phase", track="n0.s0"):
                yield env.timeout(3)
        with tracer.span("write", cat="storage", track="n1.hdfs"):
            yield env.timeout(1)

    env.process(proc())
    env.run()
    session.save()
    return str(path)


def test_render_timeline_swimlanes_and_legend(tmp_path):
    path = _session_trace(tmp_path)
    out = render_report(path, width=40)
    assert "== run: demo" in out
    assert "n0.s0" in out and "n1.hdfs" in out
    # phases paint lowercase over the uppercase task span
    lane = next(line for line in out.splitlines()
                if line.startswith("n0.s0"))
    assert "r" in lane and "p" in lane
    assert "key:" in out
    assert "M=map" in out


def test_render_timeline_empty_run():
    assert render_timeline({"name": "x", "tracks": {}, "spans": []}) \
        == "(no spans)"


def test_run_filter(tmp_path):
    path = _session_trace(tmp_path)
    assert "no matching runs" in render_report(path, run_filter="nope")
    assert "demo" in render_report(path, run_filter="dem")


def test_validate_good_trace(tmp_path):
    for suffix in (".json", ".jsonl"):
        assert validate_trace(_session_trace(tmp_path, suffix)) == []


def test_validate_flags_problems(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "traceEvents": [
            {"ph": "Z", "name": "a", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 5, "dur": -1},
            {"ph": "X", "name": "late", "pid": 1, "tid": 1, "ts": 2,
             "dur": 1},
        ],
        "deviceMetrics": [{"utilization": 1.5}],
    }))
    problems = validate_trace(str(path))
    assert any("unknown phase" in p for p in problems)
    assert any("missing 'name'" in p for p in problems)
    assert any("negative" in p for p in problems)
    assert any("non-monotonic" in p for p in problems)
    assert any("missing 'device'" in p for p in problems)
    assert any("utilization outside" in p for p in problems)


def test_validate_unreadable(tmp_path):
    missing = tmp_path / "nope.json"
    problems = validate_trace(str(missing))
    assert problems and "unreadable" in problems[0]


def test_cli_report_and_validate(tmp_path, capsys):
    from repro.obs.__main__ import main

    path = _session_trace(tmp_path)
    assert main(["report", path, "--width", "32"]) == 0
    assert "demo" in capsys.readouterr().out
    assert main(["validate", path]) == 0
    assert "OK" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "Z"}]}')
    assert main(["validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_report_json_mirrors_every_ascii_table(tmp_path, capsys):
    from repro.obs.__main__ import main
    from repro.obs.report import report_data

    path = _session_trace(tmp_path)
    assert main(["report", path, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc == report_data(path)
    assert [r["name"] for r in doc["runs"]] == ["demo"]
    assert doc["runs"][0]["spans"] == 4

    ascii_out = render_report(path)
    for table in doc["tables"].values():
        assert table["title"] in ascii_out
        assert set(table) == {"title", "columns", "rows", "note"}
        for row in table["rows"]:
            assert len(row) == len(table["columns"])


def test_report_json_partitions_every_marker_kind(tmp_path):
    """Each deviceMetrics marker key lands in its own table, in both
    the ASCII report and the JSON mirror."""
    from repro.obs.report import report_data

    path = tmp_path / "marked.json"
    path.write_text(json.dumps({
        "traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
             "ts": 0, "args": {"name": "demo"}},
            {"ph": "X", "name": "s", "cat": "t", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1.0},
        ],
        "deviceMetrics": [
            {"run": "demo", "device": "n0.disk", "utilization": 0.5,
             "bytes_moved": 1e6, "busy_seconds": 1.0,
             "mean_in_flight": 0.2},
            {"run": "demo", "device": "io.read.pfs", "scheme": "pfs",
             "utilization": 0.0, "bytes_moved": 2e6,
             "read_requests": 4, "read_cache_hits": 1},
            {"run": "demo", "device": "io.write.hdfs",
             "write_scheme": "hdfs", "utilization": 0.0,
             "bytes_moved": 3e6, "write_requests": 6},
            {"run": "demo", "device": "shuffle.j1", "shuffle_job": "j1",
             "utilization": 0.0, "bytes_moved": 4e6,
             "shuffle_fetches": 8},
            {"run": "demo", "device": "lat.task.map.duration",
             "hist_name": "task.map.duration", "utilization": 0.0,
             "count": 10, "mean_seconds": 0.5, "p50_seconds": 0.4,
             "p90_seconds": 0.9, "p99_seconds": 1.0, "max_seconds": 1.1},
        ],
    }))
    assert validate_trace(str(path)) == []
    doc = report_data(str(path))
    assert sorted(doc["tables"]) == \
        ["devices", "latencies", "reads", "shuffles", "writes"]
    # rows land in exactly one table each
    assert [r[1] for r in doc["tables"]["devices"]["rows"]] == ["n0.disk"]
    assert doc["tables"]["reads"]["rows"][0][1] == "pfs"
    assert doc["tables"]["writes"]["rows"][0][1] == "hdfs"
    assert doc["tables"]["shuffles"]["rows"][0][1] == "j1"
    lat = doc["tables"]["latencies"]["rows"][0]
    assert lat[1] == "task.map.duration"
    assert lat[2:] == [10, 0.5, 0.4, 0.9, 1.0, 1.1]

    out = render_report(str(path))
    for title in ("device utilisation", "reads by scheme",
                  "writes by scheme", "shuffle", "latency percentiles"):
        assert title in out


def test_report_json_respects_run_filter(tmp_path, capsys):
    from repro.obs.report import report_data

    path = _session_trace(tmp_path)
    doc = report_data(path, run_filter="nomatch")
    assert doc["runs"] == []
    assert doc["tables"] == {}


def test_cli_missing_trace_exits_one_with_message(tmp_path, capsys):
    from repro.obs.__main__ import main

    missing = str(tmp_path / "nope.json")
    for argv in (["report", missing], ["report", missing, "--json"],
                 ["critpath", missing]):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "cannot read trace" in err
        assert "Traceback" not in err
    # validate reports the unreadable file as a problem, not a crash
    assert main(["validate", missing]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_cli_malformed_trace_exits_one(tmp_path, capsys):
    from repro.obs.__main__ import main

    bad = tmp_path / "garbage.json"
    bad.write_text("this is not json{")
    assert main(["report", str(bad)]) == 1
    assert "cannot read trace" in capsys.readouterr().err


def test_cli_critpath_renders_tables(tmp_path, capsys):
    from repro.obs.__main__ import main

    path = _session_trace(tmp_path)
    assert main(["critpath", path, "--run", "demo"]) == 0
    out = capsys.readouterr().out
    assert "top bottlenecks" in out
    assert "map-task phase decomposition" in out

    assert main(["critpath", path, "--run", "demo", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["total"] > 0
    assert doc["segments"]
    assert "map" in doc["decomposition"]
