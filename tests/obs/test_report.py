"""Tests for the ASCII report renderer and trace validation."""

import json

from repro.obs.report import render_report, render_timeline, validate_trace
from repro.obs.trace import TraceSession
from repro.sim import Environment


def _session_trace(tmp_path, suffix=".json"):
    path = tmp_path / f"trace{suffix}"
    session = TraceSession(str(path))
    env = Environment()
    tracer = session.observe(env, "demo")

    def proc():
        with tracer.span("map", cat="task.map", track="n0.s0"):
            with tracer.span("read", cat="task.phase", track="n0.s0"):
                yield env.timeout(2)
            with tracer.span("plot", cat="task.phase", track="n0.s0"):
                yield env.timeout(3)
        with tracer.span("write", cat="storage", track="n1.hdfs"):
            yield env.timeout(1)

    env.process(proc())
    env.run()
    session.save()
    return str(path)


def test_render_timeline_swimlanes_and_legend(tmp_path):
    path = _session_trace(tmp_path)
    out = render_report(path, width=40)
    assert "== run: demo" in out
    assert "n0.s0" in out and "n1.hdfs" in out
    # phases paint lowercase over the uppercase task span
    lane = next(line for line in out.splitlines()
                if line.startswith("n0.s0"))
    assert "r" in lane and "p" in lane
    assert "key:" in out
    assert "M=map" in out


def test_render_timeline_empty_run():
    assert render_timeline({"name": "x", "tracks": {}, "spans": []}) \
        == "(no spans)"


def test_run_filter(tmp_path):
    path = _session_trace(tmp_path)
    assert "no matching runs" in render_report(path, run_filter="nope")
    assert "demo" in render_report(path, run_filter="dem")


def test_validate_good_trace(tmp_path):
    for suffix in (".json", ".jsonl"):
        assert validate_trace(_session_trace(tmp_path, suffix)) == []


def test_validate_flags_problems(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "traceEvents": [
            {"ph": "Z", "name": "a", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 5, "dur": -1},
            {"ph": "X", "name": "late", "pid": 1, "tid": 1, "ts": 2,
             "dur": 1},
        ],
        "deviceMetrics": [{"utilization": 1.5}],
    }))
    problems = validate_trace(str(path))
    assert any("unknown phase" in p for p in problems)
    assert any("missing 'name'" in p for p in problems)
    assert any("negative" in p for p in problems)
    assert any("non-monotonic" in p for p in problems)
    assert any("missing 'device'" in p for p in problems)
    assert any("utilization outside" in p for p in problems)


def test_validate_unreadable(tmp_path):
    missing = tmp_path / "nope.json"
    problems = validate_trace(str(missing))
    assert problems and "unreadable" in problems[0]


def test_cli_report_and_validate(tmp_path, capsys):
    from repro.obs.__main__ import main

    path = _session_trace(tmp_path)
    assert main(["report", path, "--width", "32"]) == 0
    assert "demo" in capsys.readouterr().out
    assert main(["validate", path]) == 0
    assert "OK" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "Z"}]}')
    assert main(["validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err
