"""Tests for the span tracer and the Chrome/JSONL exporters."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    TraceSession,
    Tracer,
    attach_tracer,
    chrome_events,
    load_trace,
    tracer_of,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.sim import Environment


def _traced_env():
    """An environment with a tracer and a couple of recorded spans."""
    env = Environment()
    tracer = attach_tracer(env)

    def proc():
        with tracer.span("outer", cat="test", track="n0.s0", idx=1):
            yield env.timeout(2)
            with tracer.span("inner", cat="test.phase", track="n0.s0"):
                yield env.timeout(3)
        tracer.instant("marker", track="n0.s0")
        tracer.counter("queue", 4.0)

    env.process(proc())
    env.run()
    return env, tracer


def test_tracer_records_simulated_interval():
    _env, tracer = _traced_env()
    # inner closes first (inner end 5 <= outer end 5, appended on exit)
    names = [s.name for s in tracer.spans]
    assert names == ["inner", "outer"]
    outer = tracer.spans[1]
    assert (outer.start, outer.end) == (0.0, 5.0)
    assert outer.duration == 5.0
    assert outer.args == {"idx": 1}
    assert tracer.instants[0][:2] == (5.0, "marker")
    assert tracer.counter_samples == [(5.0, "queue", 4.0, "util")]


def test_span_set_updates_args_midflight():
    env = Environment()
    tracer = attach_tracer(env)
    with tracer.span("s", track="t") as handle:
        handle.set(bytes=10)
        handle.set(bytes=20, extra="x")
    assert tracer.spans[0].args == {"bytes": 20, "extra": "x"}


def test_tracer_of_defaults_to_null_tracer():
    env = Environment()
    assert tracer_of(env) is NULL_TRACER


def test_null_tracer_allocates_nothing():
    handle_a = NULL_TRACER.span("a", cat="x", track="y", k=1)
    handle_b = NULL_TRACER.span("b")
    # one shared handle, no per-call allocation on the disabled hot path
    assert handle_a is handle_b
    with handle_a as h:
        assert h.set(anything=1) is h
    NULL_TRACER.instant("i")
    NULL_TRACER.counter("c", 1.0)
    assert not hasattr(NULL_TRACER, "spans")


def test_attach_tracer_is_idempotent():
    env = Environment()
    assert attach_tracer(env) is attach_tracer(env)
    assert tracer_of(env) is env.tracer


def test_chrome_events_monotonic_and_named_tracks():
    _env, tracer = _traced_env()
    events = chrome_events(tracer, pid=3, process_name="run")
    process_meta = [e for e in events if e["name"] == "process_name"]
    assert process_meta[0]["args"] == {"name": "run"}
    thread_meta = {e["args"]["name"]: e["tid"] for e in events
                   if e["name"] == "thread_name"}
    assert thread_meta == {"n0.s0": 1}
    assert all(e["pid"] == 3 for e in events)
    body = [e for e in events if e["ph"] != "M"]
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts)
    # parent precedes child at the shared start when both start at ts=0
    spans = [e for e in body if e["ph"] == "X"]
    assert [e["name"] for e in spans] == ["outer", "inner"]
    assert spans[0]["ts"] == 0.0 and spans[0]["dur"] == 5e6
    assert spans[1]["ts"] == 2e6 and spans[1]["dur"] == 3e6


def test_chrome_trace_roundtrip(tmp_path):
    _env, tracer = _traced_env()
    events = chrome_events(tracer)
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), events,
                       device_metrics=[{"device": "d0", "utilization": 0.5}])
    # the file is valid JSON on its own
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    loaded = load_trace(str(path))
    assert loaded["traceEvents"] == events
    assert loaded["deviceMetrics"] == [{"device": "d0", "utilization": 0.5}]


def test_jsonl_trace_roundtrip(tmp_path):
    _env, tracer = _traced_env()
    events = chrome_events(tracer)
    path = tmp_path / "trace.jsonl"
    write_jsonl_trace(str(path), events,
                      device_metrics=[{"device": "d0", "utilization": 0.5}])
    # every line is valid JSON on its own
    lines = path.read_text().splitlines()
    assert all(json.loads(line) for line in lines)
    loaded = load_trace(str(path))
    assert loaded["traceEvents"] == events
    assert loaded["deviceMetrics"] == [
        {"ph": "device", "device": "d0", "utilization": 0.5}]


def test_load_trace_bare_array(tmp_path):
    path = tmp_path / "array.json"
    events = [{"ph": "X", "name": "a", "pid": 0, "tid": 1,
               "ts": 0, "dur": 1}]
    path.write_text(json.dumps(events))
    assert load_trace(str(path)) == {"traceEvents": events,
                                     "deviceMetrics": []}


@pytest.mark.parametrize("suffix", [".json", ".jsonl"])
def test_identical_runs_export_byte_identical(tmp_path, suffix):
    def run(path):
        env, _tracer = _traced_env()
        session = TraceSession(str(path))
        # reuse the already-attached tracer: observe before running would
        # be the normal order, but attach_tracer is idempotent
        session.observe(env, "run")
        session.save()

    a, b = tmp_path / f"a{suffix}", tmp_path / f"b{suffix}"
    run(a)
    run(b)
    assert a.read_bytes() == b.read_bytes()


def test_disabled_session_noops():
    env = Environment()
    session = TraceSession(None)
    assert not session.enabled
    assert session.observe(env, "x") is NULL_TRACER
    assert session.runs == []
    assert session.save() is None
    assert tracer_of(env) is NULL_TRACER


def test_session_assigns_one_pid_per_run(tmp_path):
    session = TraceSession(str(tmp_path / "t.json"))
    for label in ("first", "second"):
        env = Environment()
        tracer = session.observe(env, label)
        with tracer.span("work", track="main"):
            pass
    events, _devices = session.events()
    by_pid = {}
    for ev in events:
        if ev["ph"] == "M" and ev["name"] == "process_name":
            by_pid[ev["pid"]] = ev["args"]["name"]
    assert by_pid == {1: "first", 2: "second"}
    # events() is repeatable (no accumulation across calls)
    again, _ = session.events()
    assert again == events
