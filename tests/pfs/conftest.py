"""Shared PFS test fixtures."""

import pytest

from repro.cluster import Cluster, DiskSpec, LinkSpec, NodeSpec
from repro.pfs import PFS, PFSClient, StripeLayout
from repro.sim import Environment


def small_spec(disk_bw=1000.0, n_disks=1, nic_bw=10_000.0):
    return NodeSpec(
        cpus=4,
        memory=10**9,
        disks=tuple(DiskSpec(bandwidth=disk_bw, seek_latency=0.0)
                    for _ in range(n_disks)),
        nic=LinkSpec(bandwidth=nic_bw, latency=0.0),
    )


@pytest.fixture
def world():
    """A tiny deterministic world: 2 compute nodes, 1 MDS, 2 OSS x 2 OSTs."""
    env = Environment()
    cluster = Cluster(env)
    c0 = cluster.add_node("c0", small_spec(), role="compute")
    c1 = cluster.add_node("c1", small_spec(), role="compute")
    mds = cluster.add_node("mds", small_spec(), role="storage")
    oss0 = cluster.add_node("oss0", small_spec(n_disks=2), role="storage")
    oss1 = cluster.add_node("oss1", small_spec(n_disks=2), role="storage")
    pfs = PFS(env, cluster.network, mds, [oss0, oss1],
              default_layout=StripeLayout(stripe_size=100, stripe_count=4))
    return env, cluster, pfs, [PFSClient(pfs, c0), PFSClient(pfs, c1)]


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value
