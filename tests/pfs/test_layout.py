"""Stripe layout arithmetic tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs import StripeLayout


def test_single_stripe_maps_identity():
    layout = StripeLayout(stripe_size=10, stripe_count=1)
    exts = layout.map_range(3, 25)
    assert [(e.ost_index, e.object_offset, e.length) for e in exts] == [
        (0, 3, 7), (0, 10, 10), (0, 20, 8)]


def test_round_robin_across_osts():
    layout = StripeLayout(stripe_size=10, stripe_count=3)
    exts = layout.map_range(0, 40)
    assert [(e.ost_index, e.object_offset) for e in exts] == [
        (0, 0), (1, 0), (2, 0), (0, 10)]


def test_unaligned_range():
    layout = StripeLayout(stripe_size=10, stripe_count=2)
    exts = layout.map_range(15, 10)
    assert [(e.ost_index, e.object_offset, e.file_offset, e.length)
            for e in exts] == [(1, 5, 15, 5), (0, 10, 20, 5)]


def test_object_length_accounting():
    layout = StripeLayout(stripe_size=10, stripe_count=3)
    # 35 bytes: ost0 gets 10+5, ost1 gets 10, ost2 gets 10.
    assert layout.object_length(35, 0) == 15
    assert layout.object_length(35, 1) == 10
    assert layout.object_length(35, 2) == 10
    assert layout.object_length(0, 0) == 0


def test_validation():
    with pytest.raises(ValueError):
        StripeLayout(stripe_size=0)
    with pytest.raises(ValueError):
        StripeLayout(stripe_count=0)
    layout = StripeLayout()
    with pytest.raises(ValueError):
        layout.map_range(-1, 5)


@given(
    stripe_size=st.integers(min_value=1, max_value=64),
    stripe_count=st.integers(min_value=1, max_value=8),
    offset=st.integers(min_value=0, max_value=500),
    length=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=100, deadline=None)
def test_property_extents_tile_the_range(stripe_size, stripe_count,
                                         offset, length):
    layout = StripeLayout(stripe_size=stripe_size, stripe_count=stripe_count)
    exts = layout.map_range(offset, length)
    # Extents cover [offset, offset+length) exactly, in order, no overlap.
    assert sum(e.length for e in exts) == length
    pos = offset
    for e in exts:
        assert e.file_offset == pos
        assert 0 <= e.ost_index < stripe_count
        pos += e.length
    assert pos == offset + length


@given(
    stripe_size=st.integers(min_value=1, max_value=32),
    stripe_count=st.integers(min_value=1, max_value=6),
    size=st.integers(min_value=0, max_value=400),
)
@settings(max_examples=100, deadline=None)
def test_property_object_lengths_sum_to_size(stripe_size, stripe_count, size):
    layout = StripeLayout(stripe_size=stripe_size, stripe_count=stripe_count)
    assert sum(layout.object_length(size, i)
               for i in range(stripe_count)) == size


@given(
    stripe_size=st.integers(min_value=1, max_value=32),
    stripe_count=st.integers(min_value=1, max_value=6),
    size=st.integers(min_value=0, max_value=400),
)
@settings(max_examples=100, deadline=None)
def test_property_object_length_matches_stripe_walk(stripe_size,
                                                    stripe_count, size):
    """The closed form equals the brute-force per-stripe walk."""
    layout = StripeLayout(stripe_size=stripe_size, stripe_count=stripe_count)
    walked = [0] * stripe_count
    pos = 0
    stripe = 0
    while pos < size:
        chunk = min(stripe_size, size - pos)
        walked[stripe % stripe_count] += chunk
        pos += chunk
        stripe += 1
    for i in range(stripe_count):
        assert layout.object_length(size, i) == walked[i]


def test_object_length_out_of_range_ost_is_zero():
    layout = StripeLayout(stripe_size=10, stripe_count=3)
    assert layout.object_length(35, 3) == 0
    assert layout.object_length(35, -1) == 0
