"""Tests for the MPI-IO layer (independent vs collective reads)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.pfs import PFS, PFSClient, PFSError, StripeLayout
from repro.pfs.mpiio import MPIFile, merge_ranges, partition_domains
from repro.sim import Environment

from tests.pfs.conftest import run, small_spec


def payload(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


def make_world(n_ranks=4, disk_bw=1000.0, nic_bw=10**6, n_disks=4):
    env = Environment()
    cluster = Cluster(env)
    ranks = [
        cluster.add_node(f"c{i}", small_spec(nic_bw=nic_bw), role="compute")
        for i in range(n_ranks)
    ]
    oss = cluster.add_node(
        "oss", small_spec(disk_bw=disk_bw, n_disks=n_disks, nic_bw=nic_bw),
        role="storage")
    pfs = PFS(env, cluster.network, oss, [oss])
    clients = [PFSClient(pfs, node) for node in ranks]
    return env, pfs, clients


# -------------------------------------------------------------- helpers
def test_merge_ranges_overlap_and_adjacency():
    assert merge_ranges([(0, 10), (10, 5), (30, 5), (32, 10)]) == [
        (0, 15), (30, 12)]
    assert merge_ranges([]) == []
    assert merge_ranges([(5, 0)]) == []


def test_partition_domains_balanced():
    domains = partition_domains([(0, 100)], 4)
    assert domains == [[(0, 25)], [(25, 25)], [(50, 25)], [(75, 25)]]
    assert partition_domains([], 3) == [[], [], []]


def test_partition_domains_across_gaps():
    domains = partition_domains([(0, 30), (100, 30)], 2)
    flat = [r for d in domains for r in d]
    assert sum(length for _o, length in flat) == 60
    assert all(sum(length for _o, length in d) == 30 for d in domains)


# ----------------------------------------------------------- independent
def test_read_at_returns_correct_bytes():
    env, pfs, clients = make_world()
    data = payload(4000)
    pfs.store_file("/f", data, StripeLayout(stripe_size=256, stripe_count=4))
    f = MPIFile.open(clients, "/f")
    got = run(env, f.read_at(2, 1000, 500))
    assert got == data[1000:1500]


def test_open_missing_file_raises():
    _env, _pfs, clients = make_world()
    with pytest.raises(PFSError):
        MPIFile.open(clients, "/missing")


# ------------------------------------------------------------ collective
def test_read_at_all_roundtrip_disjoint():
    env, pfs, clients = make_world()
    data = payload(4000, seed=1)
    pfs.store_file("/f", data, StripeLayout(stripe_size=128, stripe_count=4))
    f = MPIFile.open(clients, "/f")
    requests = [(i * 1000, 1000) for i in range(4)]
    results = run(env, f.read_at_all(requests))
    for i in range(4):
        assert results[i] == data[i * 1000:(i + 1) * 1000]


def test_read_at_all_with_non_readers():
    env, pfs, clients = make_world()
    data = payload(2000, seed=2)
    pfs.store_file("/f", data, StripeLayout(stripe_size=128, stripe_count=4))
    f = MPIFile.open(clients, "/f")
    results = run(env, f.read_at_all([None, (500, 700), None, (0, 100)]))
    assert results[0] == b"" and results[2] == b""
    assert results[1] == data[500:1200]
    assert results[3] == data[0:100]


def test_read_at_all_overlapping_requests():
    env, pfs, clients = make_world()
    data = payload(1000, seed=3)
    pfs.store_file("/f", data, StripeLayout(stripe_size=64, stripe_count=4))
    f = MPIFile.open(clients, "/f")
    results = run(env, f.read_at_all([(0, 600), (400, 600), (0, 1000),
                                      (250, 500)]))
    assert results[0] == data[0:600]
    assert results[1] == data[400:1000]
    assert results[2] == data
    assert results[3] == data[250:750]


def test_read_at_all_past_eof_rejected():
    env, pfs, clients = make_world()
    pfs.store_file("/f", payload(100))
    f = MPIFile.open(clients, "/f")

    def proc():
        yield from f.read_at_all([(0, 200), None, None, None])

    with pytest.raises(PFSError):
        run(env, proc())


def test_collective_beats_independent_for_scattered_small_reads():
    """The seek cost of many scattered independent reads must exceed the
    two-phase collective's large-run reads — the Fig. 6 mechanism."""
    def scattered_requests(n_ranks, n_per_rank, piece, stride):
        reqs = []
        for r in range(n_ranks):
            reqs.append([
                ((r * n_per_rank + k) * stride, piece)
                for k in range(n_per_rank)
            ])
        return reqs

    # Strong seek penalty, so request count dominates.
    def build(seek):
        env = Environment()
        cluster = Cluster(env)
        nodes = [cluster.add_node(f"c{i}", small_spec(nic_bw=10**9),
                                  role="compute") for i in range(4)]
        from repro.cluster import DiskSpec, LinkSpec, NodeSpec
        oss_spec = NodeSpec(
            cpus=4, memory=10**9,
            disks=tuple(DiskSpec(bandwidth=10**6, seek_latency=seek)
                        for _ in range(4)),
            nic=LinkSpec(bandwidth=10**9, latency=0.0))
        oss = cluster.add_node("oss", oss_spec, role="storage")
        pfs = PFS(env, cluster.network, oss, [oss])
        data = payload(64 * 1024, seed=5)
        pfs.store_file("/f", data,
                       StripeLayout(stripe_size=4096, stripe_count=4))
        clients = [PFSClient(pfs, n) for n in nodes]
        return env, MPIFile.open(clients, "/f")

    reqs = scattered_requests(4, 8, piece=512, stride=2048)

    env_i, f_i = build(seek=0.01)

    def independent():
        procs = []
        for rank, rank_reqs in enumerate(reqs):
            def worker(rank=rank, rank_reqs=rank_reqs):
                for off, length in rank_reqs:
                    yield env_i.process(f_i.read_at(rank, off, length))
            procs.append(env_i.process(worker()))
        from repro.sim import AllOf
        yield AllOf(env_i, procs)

    run(env_i, independent())
    t_ind = env_i.now

    env_c, f_c = build(seek=0.01)

    def collective():
        # One collective round covering each rank's full span.
        spans = [
            (rank_reqs[0][0],
             rank_reqs[-1][0] + rank_reqs[-1][1] - rank_reqs[0][0])
            for rank_reqs in reqs
        ]
        yield from f_c.read_at_all(spans)

    run(env_c, collective())
    t_coll = env_c.now
    assert t_coll < t_ind
