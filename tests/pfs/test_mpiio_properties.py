"""Property tests for MPI-IO range arithmetic and collective semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs import StripeLayout
from repro.pfs.mpiio import MPIFile, merge_ranges, partition_domains

from tests.pfs.conftest import run
from tests.pfs.test_mpiio import make_world, payload


ranges_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=500),
              st.integers(min_value=0, max_value=100)),
    max_size=12)


@given(ranges_strategy)
@settings(max_examples=80, deadline=None)
def test_property_merge_ranges_is_canonical(ranges):
    merged = merge_ranges(ranges)
    # Sorted, disjoint, non-adjacent, all positive.
    for (off_a, len_a), (off_b, _len_b) in zip(merged, merged[1:]):
        assert off_a + len_a < off_b
    assert all(length > 0 for _off, length in merged)
    # Coverage identical to the input byte set.
    covered_in = set()
    for off, length in ranges:
        covered_in.update(range(off, off + length))
    covered_out = set()
    for off, length in merged:
        covered_out.update(range(off, off + length))
    assert covered_in == covered_out


@given(ranges_strategy, st.integers(min_value=1, max_value=8))
@settings(max_examples=80, deadline=None)
def test_property_partition_domains_tile_the_merge(ranges, n_domains):
    merged = merge_ranges(ranges)
    domains = partition_domains(merged, n_domains)
    assert len(domains) == n_domains
    # Domains cover the merged set exactly, in order, without overlap.
    flat = [r for domain in domains for r in domain]
    covered = set()
    for off, length in flat:
        span = set(range(off, off + length))
        assert not (covered & span)
        covered.update(span)
    expect = set()
    for off, length in merged:
        expect.update(range(off, off + length))
    assert covered == expect
    # Byte balance: no domain exceeds ceil(total/n).
    total = sum(length for _o, length in merged)
    share = -(-total // n_domains) if total else 0
    for domain in domains:
        assert sum(length for _o, length in domain) <= share


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_property_collective_read_equals_independent(data_strategy):
    """read_at_all returns exactly what per-rank read_at would."""
    size = data_strategy.draw(st.integers(min_value=64, max_value=1500))
    env, pfs, clients = make_world()
    data = payload(size, seed=size)
    pfs.store_file("/f", data,
                   StripeLayout(stripe_size=97, stripe_count=4))
    f = MPIFile.open(clients, "/f")
    requests = []
    for _rank in range(4):
        if data_strategy.draw(st.booleans()):
            off = data_strategy.draw(
                st.integers(min_value=0, max_value=size - 1))
            length = data_strategy.draw(
                st.integers(min_value=0, max_value=size - off))
            requests.append((off, length))
        else:
            requests.append(None)
    results = run(env, f.read_at_all(requests))
    for rank, req in enumerate(requests):
        if req is None:
            assert results[rank] == b""
        else:
            off, length = req
            assert results[rank] == data[off:off + length]


@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=400),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_property_collective_write_roundtrip(n_writers, chunk, seed):
    env, pfs, clients = make_world()
    rng = np.random.default_rng(seed)
    pieces = [rng.integers(0, 256, size=chunk, dtype=np.uint8).tobytes()
              for _ in range(n_writers)]
    f = MPIFile.create(clients, "/w",
                       StripeLayout(stripe_size=53, stripe_count=4))
    requests = []
    pos = 0
    for piece in pieces:
        requests.append((pos, piece))
        pos += len(piece)
    requests += [None] * (4 - len(requests))
    run(env, f.write_at_all(requests))
    assert pfs.read_file_sync("/w") == b"".join(pieces)
