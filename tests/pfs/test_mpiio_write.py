"""Tests for MPI-IO write paths (independent + two-phase collective)."""

import numpy as np
import pytest

from repro.pfs import PFSError, StripeLayout
from repro.pfs.mpiio import MPIFile

from tests.pfs.conftest import run
from tests.pfs.test_mpiio import make_world, payload


def test_write_at_then_read_back():
    env, pfs, clients = make_world()
    f = MPIFile.create(clients, "/out",
                       StripeLayout(stripe_size=128, stripe_count=4))
    data = payload(1000, seed=9)

    def proc():
        yield env.process(f.write_at(0, 0, data[:500]))
        yield env.process(f.write_at(1, 500, data[500:]))

    run(env, proc())
    assert f.size == 1000
    assert pfs.read_file_sync("/out") == data


def test_collective_write_disjoint_ranks():
    env, pfs, clients = make_world()
    f = MPIFile.create(clients, "/out",
                       StripeLayout(stripe_size=64, stripe_count=4))
    data = payload(2000, seed=10)
    requests = [(r * 500, data[r * 500:(r + 1) * 500]) for r in range(4)]
    run(env, f.write_at_all(requests))
    assert pfs.read_file_sync("/out") == data


def test_collective_write_with_non_writers():
    env, pfs, clients = make_world()
    f = MPIFile.create(clients, "/out")
    data = payload(600, seed=11)
    run(env, f.write_at_all(
        [None, (0, data[:300]), None, (300, data[300:])]))
    assert pfs.read_file_sync("/out") == data


def test_collective_write_all_empty_is_noop():
    env, pfs, clients = make_world()
    f = MPIFile.create(clients, "/out")
    run(env, f.write_at_all([None, None, None, (0, b"")]))
    assert f.size == 0


def test_collective_write_overlap_rejected():
    env, _pfs, clients = make_world()
    f = MPIFile.create(clients, "/out")

    def proc():
        yield from f.write_at_all(
            [(0, b"aaaa"), (2, b"bbbb"), None, None])

    with pytest.raises(PFSError, match="overlapping"):
        run(env, proc())


def test_collective_write_wrong_arity_rejected():
    env, _pfs, clients = make_world()
    f = MPIFile.create(clients, "/out")

    def proc():
        yield from f.write_at_all([(0, b"x")])

    with pytest.raises(PFSError, match="per rank"):
        run(env, proc())


def test_collective_write_faster_than_independent_small_writes():
    """Two-phase aggregation coalesces many small writes into few large
    ones — the write-side mirror of Fig. 6's collective advantage."""
    piece = 64
    n_per_rank = 8

    def build():
        return make_world(nic_bw=10**9)

    # Independent: each rank issues its small writes one by one.
    env_i, pfs_i, clients_i = build()
    f_i = MPIFile.create(clients_i, "/out",
                         StripeLayout(stripe_size=4096, stripe_count=4))
    data = payload(4 * n_per_rank * piece, seed=12)

    def independent():
        from repro.sim import AllOf
        procs = []
        for rank in range(4):
            def worker(rank=rank):
                for k in range(n_per_rank):
                    off = (rank * n_per_rank + k) * piece
                    yield env_i.process(f_i.write_at(
                        rank, off, data[off:off + piece]))
            procs.append(env_i.process(worker()))
        yield AllOf(env_i, procs)

    run(env_i, independent())
    t_ind = env_i.now
    assert pfs_i.read_file_sync("/out") == data

    # Collective: same bytes in one coordinated call.
    env_c, pfs_c, clients_c = build()
    f_c = MPIFile.create(clients_c, "/out",
                         StripeLayout(stripe_size=4096, stripe_count=4))

    def collective():
        span = n_per_rank * piece
        yield from f_c.write_at_all([
            (rank * span, data[rank * span:(rank + 1) * span])
            for rank in range(4)
        ])

    run(env_c, collective())
    t_coll = env_c.now
    assert pfs_c.read_file_sync("/out") == data
    assert t_coll < t_ind


def test_capi_attribute_and_dim_inquiries():
    import io
    from repro.formats import Dataset, scinc
    from repro.formats.container import FormatError
    from repro.formats.scinc.capi import (
        nc_close, nc_get_att, nc_inq_att, nc_inq_dim, nc_inq_varid,
        nc_open,
    )

    ds = Dataset()
    ds.create_variable(
        "qr", ("z", "y"), np.zeros((3, 4), dtype=np.float32),
        attrs={"units": "mm/h", "scale": 2.5, "levels": [1, 2, 3]})
    buf = io.BytesIO()
    scinc.write(buf, ds)
    ncid = nc_open(buf)
    varid = nc_inq_varid(ncid, "qr")
    assert nc_inq_dim(ncid, varid, 0) == {"name": "z", "size": 3}
    assert nc_inq_dim(ncid, varid, 1) == {"name": "y", "size": 4}
    with pytest.raises(FormatError):
        nc_inq_dim(ncid, varid, 5)
    assert nc_get_att(ncid, varid, "units") == "mm/h"
    assert nc_inq_att(ncid, varid, "units") == {
        "type": "char", "length": 4}
    assert nc_inq_att(ncid, varid, "scale") == {
        "type": "double", "length": 1}
    assert nc_inq_att(ncid, varid, "levels") == {
        "type": "list", "length": 3}
    with pytest.raises(FormatError):
        nc_get_att(ncid, varid, "missing")
    nc_close(ncid)
