"""Functional + timing tests for the PFS (MDS, OST, client)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs import PFS, PFSClient, PFSError, StripeLayout
from repro.pfs.client import coalesce_extents
from repro.pfs.layout import Extent

from tests.pfs.conftest import run, small_spec


def payload(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


# --------------------------------------------------------------- metadata
def test_store_and_lookup(world):
    env, _cluster, pfs, _clients = world
    data = payload(250)
    inode = pfs.store_file("/out/file.nc", data)
    assert inode.size == 250
    assert pfs.mds.lookup("/out/file.nc").inode_id == inode.inode_id
    assert pfs.read_file_sync("/out/file.nc") == data


def test_duplicate_create_rejected(world):
    _env, _cluster, pfs, _clients = world
    pfs.store_file("/a", b"x")
    with pytest.raises(PFSError):
        pfs.store_file("/a", b"y")


def test_listdir_flat(world):
    _env, _cluster, pfs, _clients = world
    pfs.store_file("/dir/a.nc", b"1")
    pfs.store_file("/dir/b.csv", b"2")
    pfs.store_file("/dir/sub/c", b"3")
    pfs.store_file("/other", b"4")
    assert pfs.mds.listdir("/dir") == ["/dir/a.nc", "/dir/b.csv"]


def test_unlink_frees_objects(world):
    _env, _cluster, pfs, _clients = world
    inode = pfs.store_file("/x", payload(500))
    pfs.unlink("/x")
    assert not pfs.mds.exists("/x")
    for g in inode.osts:
        assert not pfs.osts[g].has_object(inode.inode_id)


def test_path_normalization(world):
    _env, _cluster, pfs, _clients = world
    pfs.store_file("a/b", b"x")
    assert pfs.mds.exists("/a/b")
    assert pfs.mds.lookup("//a///b").size == 1


# ------------------------------------------------------------ client read
def test_client_read_roundtrip(world):
    env, _cluster, pfs, clients = world
    data = payload(437)
    pfs.store_file("/f", data)
    got = run(env, clients[0].read("/f"))
    assert got == data
    assert clients[0].bytes_read == 437


def test_client_read_subrange(world):
    env, _cluster, pfs, clients = world
    data = payload(1000)
    pfs.store_file("/f", data)
    got = run(env, clients[0].read("/f", offset=123, length=456))
    assert got == data[123:579]


def test_client_read_past_eof_rejected(world):
    env, _cluster, pfs, clients = world
    pfs.store_file("/f", payload(10))

    def proc():
        yield from clients[0].read("/f", offset=5, length=10)

    with pytest.raises(PFSError):
        run(env, proc())


def test_read_crossing_stripes_preserves_order(world):
    env, _cluster, pfs, clients = world
    # stripe_size=100, count=4: this range interleaves all four OSTs twice.
    data = payload(900, seed=3)
    pfs.store_file("/f", data)
    got = run(env, clients[0].read("/f", offset=50, length=800))
    assert got == data[50:850]


def test_parallel_osts_speed_up_reads():
    """Striping over 4 OSTs must beat 1 OST for a large read."""
    from repro.cluster import Cluster
    from repro.sim import Environment

    def timed_read(stripe_count):
        env = Environment()
        cluster = Cluster(env)
        c0 = cluster.add_node("c0", small_spec(nic_bw=10**9), role="compute")
        oss = cluster.add_node(
            "oss", small_spec(disk_bw=1000.0, n_disks=4, nic_bw=10**9),
            role="storage")
        pfs = PFS(env, cluster.network, oss, [oss])
        layout = StripeLayout(stripe_size=100, stripe_count=stripe_count)
        pfs.store_file("/f", payload(4000), layout)
        client = PFSClient(pfs, c0)
        run(env, client.read("/f"))
        return env.now

    assert timed_read(4) < timed_read(1) / 2


def test_write_then_read_back(world):
    env, _cluster, pfs, clients = world
    data = payload(321)

    def proc():
        yield env.process(clients[0].write("/new", data))
        got = yield env.process(clients[1].read("/new"))
        return got

    assert run(env, proc()) == data


def test_write_accounts_bytes_written(world):
    """bytes_written parity with bytes_read (and with DFSClient): every
    completed write rolls into the client's counter."""
    env, _cluster, _pfs, clients = world
    assert clients[0].bytes_written == 0

    def proc():
        yield env.process(clients[0].write("/new", payload(321)))
        yield env.process(clients[0].write("/new", payload(100), offset=50))

    run(env, proc())
    assert clients[0].bytes_written == 421
    assert clients[1].bytes_written == 0


def test_write_takes_time(world):
    env, _cluster, pfs, clients = world

    def proc():
        yield env.process(clients[0].write("/new", payload(5000)))

    run(env, proc())
    assert env.now > 0


def test_client_stat_charges_metadata_rpc(world):
    env, _cluster, pfs, clients = world
    pfs.store_file("/f", b"abc")
    run(env, clients[0].stat("/f"))
    assert env.now == pytest.approx(0.0005)


# ------------------------------------------------------------- coalescing
def test_coalesce_merges_object_adjacent_runs():
    layout = StripeLayout(stripe_size=10, stripe_count=2)
    exts = layout.map_range(0, 40)  # 4 stripes alternating OSTs
    per_ost = coalesce_extents(exts)
    # Each OST's two stripes are object-adjacent -> one run of 20.
    assert sorted(per_ost) == [0, 1]
    for runs in per_ost.values():
        assert len(runs) == 1
        assert runs[0].length == 20


def test_coalesce_keeps_gaps_apart():
    layout = StripeLayout(stripe_size=10, stripe_count=1)
    exts = (layout.map_range(0, 10) + layout.map_range(30, 10))
    per_ost = coalesce_extents(exts)
    assert len(per_ost[0]) == 2


def test_coalesce_out_of_order_extents_still_merge():
    """Input order must not matter: runs sort by object offset."""
    exts = [
        Extent(ost_index=0, object_offset=20, file_offset=40, length=10),
        Extent(ost_index=0, object_offset=0, file_offset=0, length=10),
        Extent(ost_index=0, object_offset=10, file_offset=20, length=10),
    ]
    per_ost = coalesce_extents(exts)
    assert list(per_ost) == [0]
    (run,) = per_ost[0]
    assert (run.object_offset, run.length) == (0, 30)
    # The merged run keeps the first constituent's file offset so the
    # reassembly maths anchors on the run's start.
    assert run.file_offset == 0


def test_coalesce_single_byte_extents():
    """Degenerate 1-byte extents: adjacent ones merge, gapped stay."""
    exts = [Extent(ost_index=0, object_offset=i, file_offset=i, length=1)
            for i in (0, 1, 2, 5)]
    per_ost = coalesce_extents(exts)
    runs = per_ost[0]
    assert [(r.object_offset, r.length) for r in runs] == [(0, 3), (5, 1)]


def test_coalesce_adjacent_offsets_on_different_osts_stay_apart():
    """Object adjacency only merges within one OST's object."""
    exts = [
        Extent(ost_index=0, object_offset=0, file_offset=0, length=10),
        Extent(ost_index=1, object_offset=10, file_offset=10, length=10),
        Extent(ost_index=0, object_offset=10, file_offset=20, length=10),
    ]
    per_ost = coalesce_extents(exts)
    assert len(per_ost[0]) == 1 and per_ost[0][0].length == 20
    assert len(per_ost[1]) == 1 and per_ost[1][0].length == 10


def test_fewer_rpcs_for_aligned_reads(world):
    """Reading the whole file coalesces into one run per OST."""
    env, _cluster, pfs, clients = world
    pfs.store_file("/f", payload(800))  # 8 stripes over 4 OSTs
    inode = pfs.mds.lookup("/f")
    exts = inode.layout.map_range(0, 800)
    per_ost = coalesce_extents(exts)
    assert all(len(runs) == 1 for runs in per_ost.values())


# ------------------------------------------------------------- sync view
def test_sync_view_seek_read(world):
    _env, _cluster, pfs, _clients = world
    data = payload(500)
    pfs.store_file("/f", data)
    view = pfs.open_sync("/f")
    view.seek(100)
    assert view.read(50) == data[100:150]
    assert view.tell() == 150
    view.seek(-10, 2)
    assert view.read() == data[-10:]
    view.seek(0)
    assert view.read() == data


def test_scinc_file_readable_from_pfs(world):
    """End-to-end: an SCNC container stored on PFS serves hyperslabs."""
    import io
    from repro.formats import Dataset, scinc

    _env, _cluster, pfs, _clients = world
    arr = np.arange(60, dtype=np.float32).reshape(3, 4, 5)
    ds = Dataset()
    ds.create_variable("qr", ("z", "y", "x"), arr, chunk_shape=(1, 4, 5))
    buf = io.BytesIO()
    scinc.write(buf, ds)
    pfs.store_file("/plot_18_00_00.nc", buf.getvalue())

    reader = scinc.Reader(pfs.open_sync("/plot_18_00_00.nc"))
    np.testing.assert_array_equal(
        reader.get_vara("/qr", (1, 0, 0), (1, 4, 5)), arr[1:2])


# ------------------------------------------------------------- property
@given(
    size=st.integers(min_value=1, max_value=600),
    offset_frac=st.floats(min_value=0, max_value=1),
    stripe_size=st.integers(min_value=1, max_value=64),
    stripe_count=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_property_striped_roundtrip(size, offset_frac, stripe_size,
                                    stripe_count):
    from repro.cluster import Cluster
    from repro.sim import Environment

    env = Environment()
    cluster = Cluster(env)
    c0 = cluster.add_node("c0", small_spec(), role="compute")
    oss = cluster.add_node("oss", small_spec(n_disks=4), role="storage")
    pfs = PFS(env, cluster.network, oss, [oss])
    data = payload(size, seed=size)
    pfs.store_file("/f", data,
                   StripeLayout(stripe_size=stripe_size,
                                stripe_count=stripe_count))
    client = PFSClient(pfs, c0)
    offset = int(offset_frac * (size - 1))
    length = size - offset
    got = run(env, client.read("/f", offset=offset, length=length))
    assert got == data[offset:offset + length]
