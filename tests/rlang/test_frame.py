"""Tests for the data.frame."""

import numpy as np
import pytest

from repro.rlang import DataFrame, data_frame


def sample():
    return data_frame(
        x=[3, 1, 2, 1],
        y=[1.0, 2.0, 3.0, 4.0],
        s=["c", "a", "b", "a"],
    )


def test_construction_and_shape():
    df = sample()
    assert df.nrow == 4
    assert df.ncol == 3
    assert df.names == ["x", "y", "s"]
    assert len(df) == 4


def test_column_access_and_dtype_promotion():
    df = sample()
    np.testing.assert_array_equal(df["x"], [3, 1, 2, 1])
    assert df["s"].dtype == object  # strings become object arrays


def test_missing_column_raises():
    with pytest.raises(KeyError, match="no column"):
        sample()["zz"]


def test_mismatched_length_rejected():
    df = sample()
    with pytest.raises(ValueError):
        df["bad"] = [1, 2]


def test_scalar_recycling():
    df = sample()
    df["k"] = 7
    np.testing.assert_array_equal(df["k"], [7, 7, 7, 7])


def test_2d_column_rejected():
    df = DataFrame()
    with pytest.raises(ValueError):
        df["m"] = np.zeros((2, 2))


def test_subset_by_mask_and_index():
    df = sample()
    got = df.subset(df["x"] == 1)
    np.testing.assert_array_equal(got["y"], [2.0, 4.0])
    got2 = df.subset(np.array([0, 3]))
    np.testing.assert_array_equal(got2["x"], [3, 1])


def test_order_by_and_head():
    df = sample().order_by("x")
    np.testing.assert_array_equal(df["x"], [1, 1, 2, 3])
    np.testing.assert_array_equal(df["y"], [2.0, 4.0, 3.0, 1.0])  # stable
    desc = sample().order_by("x", decreasing=True)
    assert desc["x"][0] == 3
    assert sample().head(2).nrow == 2
    assert sample().head(99).nrow == 4


def test_select_and_drop():
    df = sample()
    assert df.select(["y", "x"]).names == ["y", "x"]
    assert df.drop("y").names == ["x", "s"]


def test_cbind_rbind():
    a = data_frame(x=[1, 2])
    b = data_frame(y=[3, 4])
    assert a.cbind(b).names == ["x", "y"]
    with pytest.raises(ValueError):
        a.cbind(data_frame(x=[0, 0]))
    stacked = a.rbind(data_frame(x=[5]))
    np.testing.assert_array_equal(stacked["x"], [1, 2, 5])
    with pytest.raises(ValueError):
        a.rbind(b)


def test_rbind_with_empty_frame():
    a = data_frame(x=[1])
    empty = DataFrame()
    assert empty.rbind(a) == a
    assert a.rbind(empty) == a


def test_rows_iteration():
    df = sample()
    rows = list(df.iter_rows())
    assert rows[0] == {"x": 3, "y": 1.0, "s": "c"}
    assert len(rows) == 4


def test_equality():
    assert sample() == sample()
    other = sample()
    other["x"] = [9, 9, 9, 9]
    assert sample() != other


def test_to_dict():
    d = data_frame(x=[1, 2]).to_dict()
    assert d == {"x": [1, 2]}
