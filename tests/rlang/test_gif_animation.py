"""Tests for the GIF codec and animation assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlang.animation import animate_fields, colormap_palette
from repro.rlang.gif import decode_gif, encode_gif


def palette():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=(256, 3), dtype=np.uint8)


# ---------------------------------------------------------------- codec
def test_gif_roundtrip_multi_frame():
    rng = np.random.default_rng(1)
    frames = [rng.integers(0, 256, size=(12, 17), dtype=np.uint8)
              for _ in range(4)]
    out, pal = decode_gif(encode_gif(frames, palette()))
    assert len(out) == 4
    for a, b in zip(frames, out):
        np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(pal, palette())


def test_gif_header_and_trailer():
    data = encode_gif([np.zeros((2, 2), dtype=np.uint8)], palette())
    assert data.startswith(b"GIF89a")
    assert data.endswith(b"\x3b")
    assert b"NETSCAPE2.0" in data  # loop extension


def test_gif_no_loop():
    data = encode_gif([np.zeros((2, 2), dtype=np.uint8)], palette(),
                      loop=False)
    assert b"NETSCAPE2.0" not in data
    frames, _ = decode_gif(data)
    assert len(frames) == 1


def test_gif_small_palette():
    small = np.array([[0, 0, 0], [255, 255, 255]], dtype=np.uint8)
    frame = np.array([[0, 1], [1, 0]], dtype=np.uint8)
    frames, pal = decode_gif(encode_gif([frame], small))
    np.testing.assert_array_equal(frames[0], frame)
    np.testing.assert_array_equal(pal[:2], small)


def test_gif_table_reset_on_large_random_frame():
    rng = np.random.default_rng(2)
    frame = rng.integers(0, 256, size=(90, 90), dtype=np.uint8)
    frames, _ = decode_gif(encode_gif([frame], palette()))
    np.testing.assert_array_equal(frames[0], frame)


def test_gif_validation():
    with pytest.raises(ValueError):
        encode_gif([], palette())
    with pytest.raises(ValueError):
        encode_gif([np.zeros((2, 2), dtype=np.uint8)],
                   np.zeros((300, 3), dtype=np.uint8))
    with pytest.raises(ValueError):
        encode_gif([np.zeros((2, 2), dtype=np.float32)], palette())
    # Frame index outside a small palette.
    with pytest.raises(ValueError):
        encode_gif([np.full((2, 2), 9, dtype=np.uint8)],
                   np.zeros((4, 3), dtype=np.uint8))
    with pytest.raises(ValueError):
        decode_gif(b"JFIF....")


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_property_gif_roundtrip(h, w, n_frames, seed):
    rng = np.random.default_rng(seed)
    frames = [rng.integers(0, 256, size=(h, w), dtype=np.uint8)
              for _ in range(n_frames)]
    out, _pal = decode_gif(encode_gif(frames, palette()))
    assert len(out) == n_frames
    for a, b in zip(frames, out):
        np.testing.assert_array_equal(a, b)


# ------------------------------------------------------------- animation
def test_colormap_palette_shape():
    pal = colormap_palette("jet")
    assert pal.shape == (256, 3)
    assert pal.dtype == np.uint8


def test_animate_fields_produces_decodable_gif():
    rng = np.random.default_rng(3)
    fields = [rng.random((10, 10)) for _ in range(5)]
    gif = animate_fields(fields, resolution=(32, 32))
    frames, pal = decode_gif(gif)
    assert len(frames) == 5
    assert frames[0].shape == (32, 32)
    np.testing.assert_array_equal(pal, colormap_palette("jet"))


def test_animation_normalises_across_series():
    """A frame's colours must reflect the series-wide range: the max of
    the whole series maps to index 255, even if it is in frame 2."""
    low = np.zeros((4, 4))
    high = np.full((4, 4), 10.0)
    gif = animate_fields([low, high], resolution=(4, 4))
    frames, _ = decode_gif(gif)
    assert frames[0].max() == 0
    assert frames[1].min() == 255


def test_animate_validation():
    with pytest.raises(ValueError):
        animate_fields([])
    with pytest.raises(ValueError):
        animate_fields([np.zeros(5)])


def test_animation_constant_series():
    gif = animate_fields([np.ones((3, 3))] * 2, resolution=(3, 3))
    frames, _ = decode_gif(gif)
    assert all((f == 0).all() for f in frames)
