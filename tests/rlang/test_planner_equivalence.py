"""Pushdown-equivalence suite: the planner is observably the frozen
eager evaluator.

Every query runs through three engines —

- :func:`repro.rlang._legacy.legacy_sqldf`, the frozen eager evaluator,
- the planner with rewrites off (``sqldf(..., optimize=False)``),
- the planner with projection/predicate pushdown on (the default) —

and all three must produce identical frames (same column names, same
dtypes-visible values, same row order). A seeded generator covers ~20
randomized shapes (filters, joins, aggregates, DISTINCT, ORDER BY,
LIMIT); targeted cases pin the satellites: GROUP BY / ORDER BY may
reference SELECT aliases, and unknown-column errors list the available
columns.
"""

import random

import numpy as np
import pytest

from repro.rlang import SQLError, data_frame, sqldf
from repro.rlang._legacy import legacy_sqldf


def make_frames(seed=0, n=40):
    rng = random.Random(seed)
    return {
        "t": data_frame(
            x=[rng.randint(0, 9) for _ in range(n)],
            y=[round(rng.uniform(-5, 5), 3) for _ in range(n)],
            k=[rng.randint(0, 3) for _ in range(n)],
            grp=[rng.choice("abcd") for _ in range(n)],
        ),
        "u": data_frame(
            k=[0, 1, 2, 3, 4],
            label=["zero", "one", "two", "three", "four"],
            w=[0.5, 1.5, 2.5, 3.5, 4.5],
        ),
    }


def assert_same(a, b):
    assert a.names == b.names
    assert a.nrow == b.nrow
    for name in a.names:
        np.testing.assert_array_equal(a[name], b[name])


def run_all_engines(sql, frames):
    eager = legacy_sqldf(sql, frames)
    plain = sqldf(sql, frames, optimize=False)
    pushed = sqldf(sql, frames)
    assert_same(plain, eager)
    assert_same(pushed, eager)
    return eager


# ------------------------------------------------------ randomized suite

_FILTERS = [
    "", " WHERE x > 4", " WHERE y <= 0.0", " WHERE x BETWEEN 2 AND 7",
    " WHERE grp IN ('a', 'c')", " WHERE NOT grp = 'b'",
    " WHERE x > 2 AND y < 3.0", " WHERE x = 1 OR k = 2",
    " WHERE grp LIKE 'a%'", " WHERE x != 5",
]
_TAILS = ["", " ORDER BY x, y", " ORDER BY y DESC", " LIMIT 7",
          " ORDER BY x LIMIT 5", " LIMIT 0"]


def _generated_queries(seed=2026, count=20):
    """~20 seeded random queries over filters, joins, aggregates."""
    rng = random.Random(seed)
    queries = []
    while len(queries) < count:
        kind = rng.choice(("select", "join", "agg", "distinct"))
        where = rng.choice(_FILTERS)
        tail = rng.choice(_TAILS)
        if kind == "select":
            cols = rng.sample(["x", "y", "k", "grp"], rng.randint(1, 3))
            queries.append(
                f"SELECT {', '.join(cols)} FROM t{where}{tail}")
        elif kind == "join":
            queries.append(
                "SELECT grp, label, y, w FROM t JOIN u USING (k)"
                f"{where.replace('x', 'k')}{tail}")
        elif kind == "agg":
            order = rng.choice(["", " ORDER BY grp"])
            queries.append(
                f"SELECT grp, COUNT(*) AS n, SUM(y) AS s FROM t{where} "
                f"GROUP BY grp{order}")
        else:
            queries.append(f"SELECT DISTINCT grp, k FROM t{where}{tail}")
    return queries


@pytest.mark.parametrize("sql", _generated_queries())
def test_generated_query_equivalence(sql):
    run_all_engines(sql, make_frames())


def test_generated_queries_cover_the_plan_space():
    sqls = _generated_queries()
    assert len(sqls) == 20
    assert any("JOIN" in s for s in sqls)
    assert any("GROUP BY" in s for s in sqls)
    assert any("LIMIT" in s for s in sqls)
    assert any("WHERE" in s for s in sqls)


# ------------------------------------------------------- targeted shapes

@pytest.mark.parametrize("sql", [
    "SELECT * FROM t",
    "SELECT x + k AS xk, y * 2 AS y2 FROM t WHERE y > 0 ORDER BY xk",
    "SELECT grp, AVG(y) AS m FROM t GROUP BY grp HAVING AVG(y) > -1.0",
    "SELECT grp, MIN(y) AS lo, MAX(y) AS hi FROM t GROUP BY grp "
    "ORDER BY grp DESC",
    "SELECT COUNT(*) AS n FROM t WHERE x IN (1, 2, 3)",
    # queries referencing no columns at all: projection pushdown must
    # not prune every column (a zero-column frame loses its row count)
    "SELECT COUNT(*) AS n FROM t",
    "SELECT 1 AS one FROM t",
    "SELECT 1 AS one FROM t LIMIT 4",
    "SELECT label, SUM(x) AS s FROM t JOIN u USING (k) GROUP BY label",
    "SELECT DISTINCT grp FROM t ORDER BY grp LIMIT 2",
    "SELECT x, y FROM t WHERE x NOT BETWEEN 3 AND 8 ORDER BY y",
])
def test_targeted_query_equivalence(sql):
    run_all_engines(sql, make_frames(seed=7))


def test_self_join_shared_scan():
    frames = make_frames(seed=3, n=12)
    frames["t2"] = frames["t"]
    run_all_engines(
        "SELECT grp FROM t JOIN u USING (k) ORDER BY grp LIMIT 9",
        frames)


# -------------------------------------------------------- alias satellite

def test_group_by_select_alias():
    """GROUP BY may reference a SELECT alias (satellite)."""
    frames = make_frames(seed=11)
    out = sqldf(
        "SELECT x * 2 AS dbl, COUNT(*) AS n FROM t GROUP BY dbl "
        "ORDER BY dbl", frames)
    eager = {}
    for v in frames["t"]["x"]:
        eager[int(v) * 2] = eager.get(int(v) * 2, 0) + 1
    np.testing.assert_array_equal(out["dbl"], sorted(eager))
    np.testing.assert_array_equal(
        out["n"], [eager[d] for d in sorted(eager)])


def test_order_by_select_alias():
    """ORDER BY may reference a SELECT alias (satellite)."""
    frames = make_frames(seed=11)
    out = sqldf("SELECT y * -1 AS neg FROM t ORDER BY neg", frames)
    assert list(out["neg"]) == sorted(-frames["t"]["y"])
    # and the same through the unoptimized planner
    out2 = sqldf("SELECT y * -1 AS neg FROM t ORDER BY neg", frames,
                 optimize=False)
    assert_same(out, out2)


def test_order_by_alias_descending():
    frames = make_frames(seed=11)
    out = sqldf("SELECT x + 1 AS xx FROM t ORDER BY xx DESC LIMIT 3",
                frames)
    assert list(out["xx"]) == sorted(frames["t"]["x"] + 1)[::-1][:3]


# -------------------------------------------- unknown-column diagnostics

def test_unknown_column_lists_available():
    frames = make_frames()
    with pytest.raises(SQLError) as exc:
        sqldf("SELECT nope FROM t", frames)
    msg = str(exc.value)
    assert "nope" in msg
    for name in ("x", "y", "k", "grp"):
        assert name in msg


def test_unknown_column_in_where_lists_available():
    frames = make_frames()
    with pytest.raises(SQLError) as exc:
        sqldf("SELECT x FROM t WHERE missing > 1", frames)
    assert "missing" in str(exc.value)
    assert "grp" in str(exc.value)


def test_unknown_group_by_alias_lists_available():
    frames = make_frames()
    with pytest.raises(SQLError) as exc:
        sqldf("SELECT grp, COUNT(*) AS n FROM t GROUP BY ghost", frames)
    assert "ghost" in str(exc.value)


def test_unknown_table_lists_registered():
    with pytest.raises(SQLError) as exc:
        sqldf("SELECT x FROM nowhere", make_frames())
    msg = str(exc.value)
    assert "nowhere" in msg and "t" in msg and "u" in msg


def test_column_only_in_unreferenced_table_still_errors():
    frames = make_frames()
    with pytest.raises(SQLError):
        sqldf("SELECT label FROM t", frames)  # label lives in u
