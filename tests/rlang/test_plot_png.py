"""Tests for PNG encoding, colormaps, and image2d plotting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlang.colormap import apply_colormap, colormap_names
from repro.rlang.plot import image2d, plot_cost_model, resize_nearest
from repro.rlang.png import decode_png, encode_png


# --------------------------------------------------------------------- PNG
def test_png_roundtrip_rgb():
    rng = np.random.default_rng(1)
    img = rng.integers(0, 256, size=(7, 11, 3), dtype=np.uint8)
    np.testing.assert_array_equal(decode_png(encode_png(img)), img)


def test_png_roundtrip_rgba():
    rng = np.random.default_rng(2)
    img = rng.integers(0, 256, size=(5, 4, 4), dtype=np.uint8)
    np.testing.assert_array_equal(decode_png(encode_png(img)), img)


def test_png_signature_and_structure():
    img = np.zeros((2, 2, 3), dtype=np.uint8)
    data = encode_png(img)
    assert data.startswith(b"\x89PNG\r\n\x1a\n")
    assert b"IHDR" in data and b"IDAT" in data and data.endswith(
        b"IEND" + (0xAE426082).to_bytes(4, "big"))


def test_png_input_validation():
    with pytest.raises(ValueError):
        encode_png(np.zeros((2, 2, 3), dtype=np.float32))
    with pytest.raises(ValueError):
        encode_png(np.zeros((2, 2), dtype=np.uint8))
    with pytest.raises(ValueError):
        encode_png(np.zeros((0, 2, 3), dtype=np.uint8))
    with pytest.raises(ValueError):
        decode_png(b"not a png")


def test_png_crc_detects_corruption():
    img = np.zeros((2, 2, 3), dtype=np.uint8)
    data = bytearray(encode_png(img))
    data[40] ^= 0xFF  # flip a byte inside a chunk payload
    with pytest.raises(ValueError):
        decode_png(bytes(data))


@given(st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=3, max_value=4),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_property_png_roundtrip(h, w, channels, seed):
    rng = np.random.default_rng(seed)
    img = rng.integers(0, 256, size=(h, w, channels), dtype=np.uint8)
    np.testing.assert_array_equal(decode_png(encode_png(img)), img)


# ---------------------------------------------------------------- colormap
def test_colormap_endpoints():
    jet = apply_colormap(np.array([0.0, 1.0]), "jet")
    np.testing.assert_array_equal(jet[0], [0, 0, 128])   # dark blue
    np.testing.assert_array_equal(jet[1], [128, 0, 0])   # dark red


def test_colormap_clips_out_of_range():
    out = apply_colormap(np.array([-5.0, 5.0]), "greys")
    np.testing.assert_array_equal(out[0], [0, 0, 0])
    np.testing.assert_array_equal(out[1], [255, 255, 255])


def test_colormap_nan_is_black():
    out = apply_colormap(np.array([np.nan]), "jet")
    np.testing.assert_array_equal(out[0], [0, 0, 0])


def test_colormap_names_and_unknown():
    assert "jet" in colormap_names()
    with pytest.raises(ValueError):
        apply_colormap(np.zeros(1), "nope")


def test_colormap_monotone_greys():
    v = np.linspace(0, 1, 11)
    out = apply_colormap(v, "greys")
    assert np.all(np.diff(out[:, 0].astype(int)) >= 0)


# ------------------------------------------------------------------ resize
def test_resize_nearest_shapes():
    field = np.arange(12).reshape(3, 4)
    out = resize_nearest(field, 6, 8)
    assert out.shape == (6, 8)
    assert out[0, 0] == field[0, 0]
    out_small = resize_nearest(field, 2, 2)
    assert out_small.shape == (2, 2)


def test_resize_rejects_non_2d():
    with pytest.raises(ValueError):
        resize_nearest(np.zeros(5), 2, 2)


# ----------------------------------------------------------------- image2d
def test_image2d_returns_valid_png_at_resolution():
    field = np.random.default_rng(3).random((10, 10))
    png = image2d(field, resolution=(64, 48))
    img = decode_png(png)
    assert img.shape == (64, 48, 3)


def test_image2d_constant_field():
    png = image2d(np.ones((5, 5)), resolution=(8, 8))
    img = decode_png(png)
    # Constant field normalises to 0 -> the colormap's low end everywhere.
    assert (img == img[0, 0]).all()


def test_image2d_highlight_draws_white_cross():
    field = np.zeros((10, 10))
    rgb = image2d(field, resolution=(100, 100),
                  highlight=[(5, 5)], as_png=False)
    assert (rgb == 255).all(axis=-1).any()


def test_image2d_deterministic():
    field = np.random.default_rng(4).random((6, 6))
    assert image2d(field, resolution=(32, 32)) == \
        image2d(field, resolution=(32, 32))


def test_image2d_vmin_vmax_override():
    field = np.array([[0.5]])
    a = image2d(field, resolution=(2, 2), vmin=0.0, vmax=1.0, as_png=False)
    b = image2d(field, resolution=(2, 2), as_png=False)  # auto: span 0
    assert not np.array_equal(a, b)


def test_image2d_rejects_bad_rank():
    with pytest.raises(ValueError):
        image2d(np.zeros((2, 2, 2)))


# --------------------------------------------------------------- cost model
def test_plot_cost_model_monotone():
    small = plot_cost_model(100, (100, 100))
    big = plot_cost_model(100, (1200, 1200))
    assert big > small
    more_data = plot_cost_model(10**6, (100, 100))
    assert more_data > small
