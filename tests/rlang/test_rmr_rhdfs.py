"""Tests for the rmr2/rhdfs bindings over the simulated cluster."""

import pytest

from repro.mapreduce import TextInputFormat
from repro.rlang.rmr import RMRSession, keyval
from repro.rlang.rhdfs import RHDFS

from tests.mapreduce.conftest import run, world  # noqa: F401 (fixture)


def test_rmr_wordcount(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"x y x\nz x\n" * 5)
    session = RMRSession(env, nodes, hdfs, cluster.network)

    def wc_map(_offset, line):
        return [keyval(word, 1) for word in line.split()]

    def wc_reduce(key, values):
        return keyval(key, sum(values))

    result = run(env, session.mapreduce(
        input="/in", map=wc_map, reduce=wc_reduce,
        input_format=TextInputFormat(), n_reducers=2, name="rmr-wc"))
    got = {k: v for recs in result.outputs.values() for k, v in recs}
    assert got == {b"x": 15, b"y": 5, b"z": 5}


def test_rmr_map_only_with_none_results(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"keep\nskip\nkeep\n")
    session = RMRSession(env, nodes, hdfs, cluster.network)

    def filter_map(_offset, line):
        return keyval(line, 1) if line == b"keep" else None

    result = run(env, session.mapreduce(
        input="/in", map=filter_map, input_format=TextInputFormat(),
        name="rmr-filter"))
    assert sorted(result.map_records) == [(b"keep", 1), (b"keep", 1)]


def test_rmr_cost_hook_charges_phases(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"a\nb\n")
    session = RMRSession(env, nodes, hdfs, cluster.network)

    def costly(key, value):
        return [("plot", 0.5)]

    result = run(env, session.mapreduce(
        input="/in", map=lambda k, v: keyval(v, 1),
        input_format=TextInputFormat(), name="rmr-cost",
        costs=costly))
    means = result.phase_means("map")
    assert means.get("plot", 0) > 0


def test_rmr_bad_return_type_rejected(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"a\n")
    session = RMRSession(env, nodes, hdfs, cluster.network)

    def bad_map(_k, v):
        return ["not a keyval"]

    def proc():
        yield from session.mapreduce(
            input="/in", map=bad_map, input_format=TextInputFormat(),
            name="rmr-bad")

    # The TypeError exhausts the engine's task retries and surfaces as a
    # job failure naming the original error.
    from repro.mapreduce import MapReduceError
    with pytest.raises(MapReduceError, match="keyval"):
        run(env, proc())


def test_rhdfs_put_get_ls_exists(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    r = RHDFS(hdfs, nodes[0])

    def proc():
        yield env.process(r.hdfs_put("/results/img.png", b"PNGDATA"))
        assert (yield env.process(r.hdfs_exists("/results/img.png")))
        data = yield env.process(r.hdfs_get("/results/img.png"))
        listing = yield env.process(r.hdfs_ls("/results"))
        return data, listing

    data, listing = run(env, proc())
    assert data == b"PNGDATA"
    assert listing == ["/results/img.png"]
