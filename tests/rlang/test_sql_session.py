"""SQLSession over scinc files on the simulated PFS: twin timings,
pushdown soundness, zone-map pruning, and the scan accounting.

The world comes from :func:`repro.bench.sqlbench.build_sql_world` (the
same harness CI benches), shrunk to a fast shape. The invariants:

- the three engine configurations (frozen eager, planner-off,
  planner+pushdown) return identical frames;
- legacy vs planner-with-pushdown-off simulated timings agree to 1e-9
  (the twin-world pin);
- pushdown never skips a chunk that contains a predicate match
  (soundness, recomputed from the synthesized data);
- pruning is visible: fewer PFS bytes, ``io.read.pfs.skipped_*`` and
  ``sql.*`` counters move.
"""

import numpy as np
import pytest

from repro import costs
from repro.bench.sqlbench import build_sql_world, selective_threshold
from repro.obs.metrics import metrics_of
from repro.rlang import SQLError, SQLSession, data_frame
from repro.workloads.nuwrf import NUWRFConfig, synthesize_timestep

SHAPE = (4, 16, 16)


@pytest.fixture(autouse=True)
def _reset_scale():
    yield
    costs.reset_scale()


def small_config(stats=True):
    return NUWRFConfig(shape=SHAPE, timesteps=1, chunk_stats=stats)


def run_session(engine, pushdown, config, queries, frames=()):
    env, nodes, scidp, manifest = build_sql_world(config)
    session = SQLSession(env, scidp.storage, nodes[0],
                         pushdown=pushdown, engine=engine)
    for i, path in enumerate(manifest["files"]):
        session.register_scinc(f"t{i}", f"pfs://{path.lstrip('/')}")
    for name, frame in frames:
        session.register_frame(name, frame)
    results, scans = [], []
    t0 = env.now
    for sql in queries:
        proc = env.process(session.query(sql))
        env.run()
        results.append(proc.value)
        scans.extend(session.last_scan_info)
    return {"env": env, "session": session, "results": results,
            "scans": scans, "seconds": env.now - t0}


def selective_query(config):
    thr = selective_threshold(config)
    return (f"SELECT altitude, longitude, latitude, QR FROM t0 "
            f"WHERE QR > {thr:.9f}"), thr


def test_engines_identical_and_timing_twin():
    config = small_config()
    sql, _thr = selective_query(config)
    queries = [sql,
               "SELECT altitude, AVG(QC) AS m FROM t0 "
               "GROUP BY altitude ORDER BY altitude"]
    eager = run_session("legacy", False, config, queries)
    plain = run_session("planner", False, config, queries)
    pushed = run_session("planner", True, config, queries)
    for a, b in zip(plain["results"], eager["results"]):
        assert a == b
    for a, b in zip(pushed["results"], eager["results"]):
        assert a == b
    # the twin-world pin: same reads, same order, same charges
    assert abs(eager["seconds"] - plain["seconds"]) < 1e-9
    # and pruning actually buys simulated time
    assert pushed["seconds"] < eager["seconds"]


def test_result_matches_brute_force():
    config = small_config()
    sql, thr = selective_query(config)
    out = run_session("planner", True, config, [sql])["results"][0]
    qr = synthesize_timestep(config, 0).variables["QR"].data
    mask = qr > thr
    z, y, x = np.nonzero(mask)  # C order == flatnonzero order
    np.testing.assert_array_equal(out["altitude"], z)
    np.testing.assert_array_equal(out["longitude"], y)
    np.testing.assert_array_equal(out["latitude"], x)
    np.testing.assert_array_equal(out["QR"], qr[mask])


def test_count_star_survives_projection_pushdown():
    """A query referencing no columns must keep the table's row count:
    projection pushdown may not prune every scinc variable (regression —
    a zero-column frame has nrow == 0)."""
    config = small_config()
    queries = ["SELECT COUNT(*) AS n FROM t0"]
    eager = run_session("legacy", False, config, queries)
    pushed = run_session("planner", True, config, queries)
    assert pushed["results"][0] == eager["results"][0]
    n = int(np.prod(SHAPE))
    assert list(pushed["results"][0]["n"]) == [n]


def test_pushdown_never_skips_a_matching_chunk():
    """Soundness: every zone-map-skipped chunk is recomputed from the
    raw data and must contain no predicate match."""
    config = small_config()
    sql, thr = selective_query(config)
    run = run_session("planner", True, config, [sql])
    session = run["session"]
    url = session.tables["t0"].url
    header, _size = session._headers[url]
    skipped_offsets = {
        off for info in run["scans"] for plan in info.plans
        for (off, _n) in plan.skipped}
    assert skipped_offsets, "expected some chunk to be pruned"
    qr = synthesize_timestep(config, 0).variables["QR"].data
    var = header.variable("/QR")
    for rec in var.chunks:
        abs_off = header.data_start + rec.offset
        if abs_off in skipped_offsets:
            chunk = qr[var.chunk_slices(rec.index)]
            assert not (chunk > thr).any(), \
                f"pruned chunk {rec.index} contains matches"


def test_pushdown_prunes_bytes_variables_and_counters():
    config = small_config()
    sql, _thr = selective_query(config)
    eager = run_session("legacy", False, config, [sql])
    pushed = run_session("planner", True, config, [sql])
    e_bytes = sum(i.bytes_read for i in eager["scans"])
    p_bytes = sum(i.bytes_read for i in pushed["scans"])
    assert p_bytes < e_bytes
    info = pushed["scans"][0]
    # only QR is a variable column (the rest are dims): 22 of the 23
    # NU-WRF variables never produce a read
    assert info.variables_pruned == 22
    assert info.chunks_pruned > 0 and info.bytes_skipped > 0
    registry = metrics_of(pushed["env"])
    assert registry.counter("sql.queries").value == 1
    assert registry.counter("sql.bytes_skipped").value == \
        info.bytes_skipped
    assert registry.counter("sql.bytes_scanned").value == info.bytes_read
    assert registry.counter("sql.chunks_pruned").value == \
        info.chunks_pruned
    assert registry.counter(
        "io.read.pfs.skipped_bytes").value >= info.bytes_skipped
    assert registry.counter("io.read.pfs.skipped_chunks").value > 0
    # the eager path skipped nothing
    e_registry = metrics_of(eager["env"])
    assert e_registry.counter("sql.bytes_skipped").value == 0


def test_no_zone_maps_still_correct_and_unpruned():
    """Files written without stats: projection pushdown still works,
    zone-map pruning degrades to reading every chunk — never to a wrong
    answer."""
    config = small_config(stats=False)
    sql, _thr = selective_query(config)
    eager = run_session("legacy", False, config, [sql])
    pushed = run_session("planner", True, config, [sql])
    assert pushed["results"][0] == eager["results"][0]
    info = pushed["scans"][0]
    assert info.chunks_pruned == 0          # nothing provable
    assert info.variables_pruned == 22      # projection still prunes


def test_dimension_predicate_prunes_exactly_without_stats():
    """Dimension columns prune from chunk-grid coordinates alone — no
    zone maps needed (one z-level per chunk in the NU-WRF layout)."""
    config = small_config(stats=False)
    run = run_session(
        "planner", True, config,
        ["SELECT altitude, QV FROM t0 WHERE altitude = 2"])
    out = run["results"][0]
    assert set(out["altitude"]) == {2}
    assert out.nrow == SHAPE[1] * SHAPE[2]
    info = run["scans"][0]
    # QV has 4 z-chunks; only the altitude=2 slab survives
    assert info.chunks_read == 1
    assert info.chunks_pruned == SHAPE[0] - 1


def test_scinc_join_with_registered_frame():
    config = small_config()
    labels = data_frame(altitude=[0, 1, 2, 3],
                        band=["low", "low", "mid", "top"])
    queries = ["SELECT band, AVG(T) AS t_mean FROM t0 "
               "JOIN bands USING (altitude) GROUP BY band ORDER BY band"]
    eager = run_session("legacy", False, config, queries,
                        frames=[("bands", labels)])
    pushed = run_session("planner", True, config, queries,
                         frames=[("bands", labels)])
    assert pushed["results"][0] == eager["results"][0]
    assert pushed["results"][0]["band"].tolist() == ["low", "mid", "top"]


def test_unknown_table_lists_frames_and_tables():
    config = small_config()
    env, nodes, scidp, manifest = build_sql_world(config)
    session = SQLSession(env, scidp.storage, nodes[0])
    session.register_scinc("t0", f"pfs://{manifest['files'][0].lstrip('/')}")
    session.register_frame("f", data_frame(x=[1]))
    proc = env.process(session.query("SELECT x FROM ghost"))
    with pytest.raises(SQLError) as exc:
        env.run()
    assert "ghost" in str(exc.value)
    assert "t0" in str(exc.value) and "f" in str(exc.value)


def test_unknown_engine_rejected():
    config = small_config()
    env, nodes, scidp, _manifest = build_sql_world(config)
    with pytest.raises(ValueError):
        SQLSession(env, scidp.storage, nodes[0], engine="duckdb")
