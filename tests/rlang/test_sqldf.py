"""Tests for the SQL engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlang import SQLError, data_frame, sqldf


@pytest.fixture
def frames():
    return {
        "t": data_frame(
            x=[1, 2, 3, 4, 5],
            y=[10.0, 20.0, 30.0, 40.0, 50.0],
            grp=["a", "b", "a", "b", "a"],
        )
    }


def test_select_star(frames):
    out = sqldf("SELECT * FROM t", frames)
    assert out == frames["t"]


def test_select_columns(frames):
    out = sqldf("SELECT y, x FROM t", frames)
    assert out.names == ["y", "x"]
    np.testing.assert_array_equal(out["x"], [1, 2, 3, 4, 5])


def test_where_comparison(frames):
    out = sqldf("SELECT x FROM t WHERE y > 25", frames)
    np.testing.assert_array_equal(out["x"], [3, 4, 5])


def test_where_and_or_not(frames):
    out = sqldf(
        "SELECT x FROM t WHERE (y > 15 AND grp = 'a') OR x = 1", frames)
    np.testing.assert_array_equal(out["x"], [1, 3, 5])
    out2 = sqldf("SELECT x FROM t WHERE NOT grp = 'a'", frames)
    np.testing.assert_array_equal(out2["x"], [2, 4])


def test_arithmetic_expressions(frames):
    out = sqldf("SELECT x * 2 + 1 AS z FROM t WHERE x <= 2", frames)
    np.testing.assert_array_equal(out["z"], [3, 5])


def test_unary_minus_and_modulo(frames):
    out = sqldf("SELECT -x AS neg, x % 2 AS parity FROM t", frames)
    np.testing.assert_array_equal(out["neg"], [-1, -2, -3, -4, -5])
    np.testing.assert_array_equal(out["parity"], [1, 0, 1, 0, 1])


def test_order_by_limit_top_n(frames):
    """The paper's 'highlight top 10' query shape (Fig. 9)."""
    out = sqldf("SELECT x, y FROM t ORDER BY y DESC LIMIT 2", frames)
    np.testing.assert_array_equal(out["y"], [50.0, 40.0])


def test_order_by_expression(frames):
    out = sqldf("SELECT x FROM t ORDER BY y * -1", frames)
    np.testing.assert_array_equal(out["x"], [5, 4, 3, 2, 1])


def test_order_by_multiple_keys():
    frames = {"t": data_frame(a=[1, 1, 2, 2], b=[4, 3, 2, 1])}
    out = sqldf("SELECT a, b FROM t ORDER BY a ASC, b ASC", frames)
    np.testing.assert_array_equal(out["b"], [3, 4, 1, 2])


def test_aggregates_whole_table(frames):
    out = sqldf(
        "SELECT COUNT(*) AS n, SUM(y) AS total, AVG(x) AS mean_x, "
        "MIN(y) AS lo, MAX(y) AS hi FROM t", frames)
    assert out.nrow == 1
    assert out["n"][0] == 5
    assert out["total"][0] == 150.0
    assert out["mean_x"][0] == 3.0
    assert out["lo"][0] == 10.0 and out["hi"][0] == 50.0


def test_group_by(frames):
    out = sqldf(
        "SELECT grp, SUM(y) AS total FROM t GROUP BY grp "
        "ORDER BY grp", frames)
    np.testing.assert_array_equal(out["grp"], ["a", "b"])
    np.testing.assert_array_equal(out["total"], [90.0, 60.0])


def test_group_by_having(frames):
    out = sqldf(
        "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp "
        "HAVING COUNT(*) > 2", frames)
    np.testing.assert_array_equal(out["grp"], ["a"])
    assert out["n"][0] == 3


def test_in_list(frames):
    out = sqldf("SELECT x FROM t WHERE x IN (1, 4)", frames)
    np.testing.assert_array_equal(out["x"], [1, 4])
    out2 = sqldf("SELECT x FROM t WHERE x NOT IN (1, 2, 3)", frames)
    np.testing.assert_array_equal(out2["x"], [4, 5])


def test_string_literal_with_escape():
    frames = {"t": data_frame(s=["it's", "plain"])}
    out = sqldf("SELECT s FROM t WHERE s = 'it''s'", frames)
    assert out.nrow == 1


def test_implicit_alias(frames):
    out = sqldf("SELECT x + 1 bump FROM t LIMIT 1", frames)
    assert out.names == ["bump"]


def test_default_output_names(frames):
    out = sqldf("SELECT SUM(x), COUNT(*) FROM t", frames)
    assert out.names == ["sum_x", "count_*"]


def test_empty_where_result(frames):
    out = sqldf("SELECT x FROM t WHERE x > 100", frames)
    assert out.nrow == 0


def test_empty_group_result(frames):
    out = sqldf("SELECT grp, SUM(x) AS s FROM t WHERE x > 100 "
                "GROUP BY grp", frames)
    assert out.nrow == 0


def test_limit_zero(frames):
    assert sqldf("SELECT x FROM t LIMIT 0", frames).nrow == 0


# ------------------------------------------------------------------ errors
@pytest.mark.parametrize("bad", [
    "SELECT FROM t",
    "SELECT * FROM",
    "SELECT * FROM missing_table",
    "SELECT * FROM t WHERE",
    "SELECT * FROM t LIMIT -1",
    "SELECT * FROM t GARBAGE",
    "SELECT SUM(*) FROM t",
    "SELECT x FROM t ORDER BY SUM(y) GROUP BY x",
    "SELECT * FROM t GROUP BY grp",
    "SELECT bad~char FROM t",
])
def test_malformed_queries_raise(bad, frames):
    with pytest.raises(SQLError):
        sqldf(bad, frames)


def test_aggregate_order_by_must_use_output_column(frames):
    with pytest.raises(SQLError):
        sqldf("SELECT grp, SUM(y) AS s FROM t GROUP BY grp "
              "ORDER BY y + 1", frames)


# --------------------------------------------------------------- property
@given(st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    min_size=1, max_size=50))
@settings(max_examples=40, deadline=None)
def test_property_top_k_matches_numpy(values):
    frames = {"t": data_frame(v=np.array(values, dtype=np.float64))}
    out = sqldf("SELECT v FROM t ORDER BY v DESC LIMIT 5", frames)
    expect = np.sort(np.array(values))[::-1][:5]
    np.testing.assert_array_equal(out["v"], expect)


@given(st.lists(st.integers(min_value=-100, max_value=100),
                min_size=1, max_size=60),
       st.integers(min_value=-100, max_value=100))
@settings(max_examples=40, deadline=None)
def test_property_where_matches_numpy_mask(values, threshold):
    arr = np.array(values)
    frames = {"t": data_frame(v=arr)}
    out = sqldf(f"SELECT v FROM t WHERE v >= {threshold}", frames)
    np.testing.assert_array_equal(out["v"], arr[arr >= threshold])


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_property_group_counts_match_counter(groups):
    from collections import Counter
    frames = {"t": data_frame(g=groups)}
    out = sqldf("SELECT g, COUNT(*) AS n FROM t GROUP BY g ORDER BY g",
                frames)
    expect = Counter(groups)
    assert dict(zip(out["g"], out["n"])) == dict(expect)
