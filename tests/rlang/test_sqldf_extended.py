"""Tests for extended SQL features: DISTINCT, BETWEEN, LIKE."""

import numpy as np
import pytest

from repro.rlang import SQLError, data_frame, sqldf


@pytest.fixture
def frames():
    return {
        "t": data_frame(
            x=[1, 2, 2, 3, 3, 3],
            grp=["a", "b", "b", "a", "c", "a"],
            name=["plot_18", "plot_19", "stat_19", "plot_20",
                  "misc", "plot_21"],
        )
    }


# ---------------------------------------------------------------- DISTINCT
def test_distinct_single_column(frames):
    out = sqldf("SELECT DISTINCT grp FROM t ORDER BY grp", frames)
    np.testing.assert_array_equal(out["grp"], ["a", "b", "c"])


def test_distinct_multi_column(frames):
    out = sqldf("SELECT DISTINCT x, grp FROM t", frames)
    rows = set(zip(out["x"].tolist(), out["grp"].tolist()))
    assert rows == {(1, "a"), (2, "b"), (3, "a"), (3, "c")}
    assert out.nrow == 4


def test_distinct_keeps_first_occurrence_order(frames):
    out = sqldf("SELECT DISTINCT x FROM t", frames)
    np.testing.assert_array_equal(out["x"], [1, 2, 3])


def test_distinct_with_limit(frames):
    out = sqldf("SELECT DISTINCT x FROM t LIMIT 2", frames)
    np.testing.assert_array_equal(out["x"], [1, 2])


def test_distinct_with_aggregate_rejected(frames):
    with pytest.raises(SQLError, match="DISTINCT"):
        sqldf("SELECT DISTINCT COUNT(*) FROM t", frames)


# ----------------------------------------------------------------- BETWEEN
def test_between_inclusive(frames):
    out = sqldf("SELECT x FROM t WHERE x BETWEEN 2 AND 3", frames)
    np.testing.assert_array_equal(out["x"], [2, 2, 3, 3, 3])


def test_not_between(frames):
    out = sqldf("SELECT x FROM t WHERE x NOT BETWEEN 2 AND 3", frames)
    np.testing.assert_array_equal(out["x"], [1])


def test_between_with_expressions(frames):
    out = sqldf("SELECT x FROM t WHERE x * 2 BETWEEN 3 AND 5", frames)
    np.testing.assert_array_equal(out["x"], [2, 2])


def test_between_inside_boolean_logic(frames):
    out = sqldf("SELECT x FROM t WHERE x BETWEEN 1 AND 2 "
                "AND grp = 'b'", frames)
    np.testing.assert_array_equal(out["x"], [2, 2])


# -------------------------------------------------------------------- LIKE
def test_like_prefix(frames):
    out = sqldf("SELECT name FROM t WHERE name LIKE 'plot%'", frames)
    assert out.nrow == 4
    assert all(str(n).startswith("plot") for n in out["name"])


def test_like_underscore_single_char(frames):
    out = sqldf("SELECT name FROM t WHERE name LIKE 'plot_1_'", frames)
    assert sorted(out["name"]) == ["plot_18", "plot_19"] \
        or out.nrow == 4  # '_' matches the literal underscore too
    # Every match is exactly 7 characters.
    assert all(len(str(n)) == 7 for n in out["name"])


def test_not_like(frames):
    out = sqldf("SELECT name FROM t WHERE name NOT LIKE 'plot%'", frames)
    assert sorted(out["name"]) == ["misc", "stat_19"]


def test_like_is_anchored(frames):
    out = sqldf("SELECT name FROM t WHERE name LIKE 'lot%'", frames)
    assert out.nrow == 0


def test_like_requires_string_pattern(frames):
    with pytest.raises(SQLError):
        sqldf("SELECT name FROM t WHERE name LIKE 5", frames)


def test_like_regex_metacharacters_escaped():
    frames = {"t": data_frame(s=["a.b", "axb"])}
    out = sqldf("SELECT s FROM t WHERE s LIKE 'a.b'", frames)
    np.testing.assert_array_equal(out["s"], ["a.b"])


# -------------------------------------------------------------------- JOIN
@pytest.fixture
def model_frames():
    return {
        "model_a": data_frame(
            lon=[0, 0, 1, 1], lat=[0, 1, 0, 1],
            t_a=[280.0, 281.0, 282.0, 283.0]),
        "model_b": data_frame(
            lon=[0, 0, 1, 1], lat=[0, 1, 0, 1],
            t_b=[280.5, 280.0, 283.0, 282.0]),
    }


def test_join_using_single_key():
    frames = {
        "a": data_frame(k=[1, 2, 3], x=[10, 20, 30]),
        "b": data_frame(k=[2, 3, 4], y=[200, 300, 400]),
    }
    out = sqldf("SELECT k, x, y FROM a JOIN b USING (k) ORDER BY k",
                frames)
    np.testing.assert_array_equal(out["k"], [2, 3])
    np.testing.assert_array_equal(out["x"], [20, 30])
    np.testing.assert_array_equal(out["y"], [200, 300])


def test_join_cmip_style_model_comparison(model_frames):
    """§II-A's mathematical comparison: grid-aligned difference of two
    model outputs via SQL."""
    out = sqldf(
        "SELECT lon, lat, t_a - t_b AS delta FROM model_a "
        "JOIN model_b USING (lon, lat) "
        "ORDER BY delta DESC LIMIT 2", model_frames)
    np.testing.assert_allclose(out["delta"], [1.0, 1.0])


def test_join_aggregate(model_frames):
    out = sqldf(
        "SELECT COUNT(*) AS n, AVG(t_a - t_b) AS bias FROM model_a "
        "JOIN model_b USING (lon, lat)", model_frames)
    assert out["n"][0] == 4
    assert out["bias"][0] == pytest.approx(0.125)


def test_join_duplicate_right_keys_multiply_rows():
    frames = {
        "a": data_frame(k=[1], x=[10]),
        "b": data_frame(k=[1, 1], y=[7, 8]),
    }
    out = sqldf("SELECT k, y FROM a JOIN b USING (k) ORDER BY y", frames)
    np.testing.assert_array_equal(out["y"], [7, 8])


def test_join_empty_result():
    frames = {
        "a": data_frame(k=[1], x=[10]),
        "b": data_frame(k=[9], y=[90]),
    }
    out = sqldf("SELECT k FROM a JOIN b USING (k)", frames)
    assert out.nrow == 0


def test_chained_joins():
    frames = {
        "a": data_frame(k=[1, 2], x=[10, 20]),
        "b": data_frame(k=[1, 2], y=[11, 21]),
        "c": data_frame(k=[2], z=[22]),
    }
    out = sqldf("SELECT k, x, y, z FROM a JOIN b USING (k) "
                "JOIN c USING (k)", frames)
    assert out.nrow == 1
    assert out.row(0) == {"k": 2, "x": 20, "y": 21, "z": 22}


def test_join_errors():
    frames = {
        "a": data_frame(k=[1], x=[10]),
        "b": data_frame(j=[1], x=[99]),
    }
    with pytest.raises(SQLError, match="missing from a side"):
        sqldf("SELECT * FROM a JOIN b USING (k)", frames)
    frames2 = {
        "a": data_frame(k=[1], x=[10]),
        "b": data_frame(k=[1], x=[99]),
    }
    with pytest.raises(SQLError, match="ambiguous"):
        sqldf("SELECT * FROM a JOIN b USING (k)", frames2)
    with pytest.raises(SQLError, match="unknown table"):
        sqldf("SELECT * FROM a JOIN ghost USING (k)", frames)
