"""Differential testing: sqldf vs a brute-force Python reference.

Random small frames and random query fragments are evaluated both by the
vectorised engine and by naive row-at-a-time Python; any disagreement is
a bug in one of them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlang import data_frame, sqldf


@st.composite
def small_frame(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    xs = draw(st.lists(st.integers(min_value=-20, max_value=20),
                       min_size=n, max_size=n))
    ys = draw(st.lists(st.integers(min_value=-20, max_value=20),
                       min_size=n, max_size=n))
    gs = draw(st.lists(st.sampled_from(["a", "b", "c"]),
                       min_size=n, max_size=n))
    return {"x": xs, "y": ys, "g": gs}


@given(small_frame(),
       st.integers(min_value=-20, max_value=20),
       st.sampled_from([">", ">=", "<", "<=", "=", "!="]))
@settings(max_examples=60, deadline=None)
def test_where_matches_reference(columns, threshold, op):
    frames = {"t": data_frame(**columns)}
    out = sqldf(f"SELECT x FROM t WHERE x {op} {threshold}", frames)

    py_op = {">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
             "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
             "=": lambda a, b: a == b, "!=": lambda a, b: a != b}[op]
    expect = [x for x in columns["x"] if py_op(x, threshold)]
    assert out["x"].tolist() == expect


@given(small_frame())
@settings(max_examples=60, deadline=None)
def test_compound_predicate_matches_reference(columns):
    frames = {"t": data_frame(**columns)}
    out = sqldf("SELECT x, y FROM t "
                "WHERE (x > 0 AND y < 5) OR NOT g = 'a'", frames)
    expect = [(x, y) for x, y, g in zip(
        columns["x"], columns["y"], columns["g"])
        if (x > 0 and y < 5) or not g == "a"]
    assert list(zip(out["x"].tolist(), out["y"].tolist())) == expect


@given(small_frame())
@settings(max_examples=60, deadline=None)
def test_group_aggregates_match_reference(columns):
    frames = {"t": data_frame(**columns)}
    out = sqldf("SELECT g, COUNT(*) AS n, SUM(x) AS sx, MIN(y) AS my "
                "FROM t GROUP BY g ORDER BY g", frames)
    groups: dict = {}
    for x, y, g in zip(columns["x"], columns["y"], columns["g"]):
        groups.setdefault(g, []).append((x, y))
    expect = sorted(
        (g, len(rows), sum(x for x, _ in rows), min(y for _, y in rows))
        for g, rows in groups.items())
    got = list(zip(out["g"].tolist(), out["n"].tolist(),
                   out["sx"].tolist(), out["my"].tolist()))
    assert got == expect


@given(small_frame(), st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_order_limit_matches_reference(columns, limit):
    frames = {"t": data_frame(**columns)}
    out = sqldf(f"SELECT x FROM t ORDER BY x DESC, y ASC LIMIT {limit}",
                frames)
    ordered = sorted(zip(columns["x"], columns["y"]),
                     key=lambda xy: (-xy[0], xy[1]))
    assert out["x"].tolist() == [x for x, _y in ordered[:limit]]


@given(small_frame())
@settings(max_examples=40, deadline=None)
def test_distinct_matches_reference(columns):
    frames = {"t": data_frame(**columns)}
    out = sqldf("SELECT DISTINCT x, g FROM t", frames)
    seen = []
    for x, g in zip(columns["x"], columns["g"]):
        if (x, g) not in seen:
            seen.append((x, g))
    assert list(zip(out["x"].tolist(), out["g"].tolist())) == seen


@given(small_frame(), small_frame())
@settings(max_examples=40, deadline=None)
def test_join_matches_reference(left_cols, right_cols):
    frames = {
        "l": data_frame(x=left_cols["x"], g=left_cols["g"]),
        "r": data_frame(g=right_cols["g"], y=right_cols["y"]),
    }
    out = sqldf("SELECT g, x, y FROM l JOIN r USING (g)", frames)
    expect = [
        (gl, x, y)
        for x, gl in zip(left_cols["x"], left_cols["g"])
        for y, gr in zip(right_cols["y"], right_cols["g"])
        if gl == gr
    ]
    got = list(zip(out["g"].tolist(), out["x"].tolist(),
                   out["y"].tolist()))
    assert got == expect
