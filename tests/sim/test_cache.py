"""Unit tests for the read-ahead cache and its lookup protocol."""

import pytest

from repro.sim import Environment, ReadAheadCache
from repro.sim.engine import SimulationError


def test_miss_then_fill_then_hit():
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=1024)
    key = ("/f", 0, 4)
    assert cache.get(key) is None
    reservation = cache.reserve(key)
    reservation.fill(b"data")
    assert cache.get(key) == b"data"
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.bytes_inserted == 4
    assert cache.stats.bytes_from_cache == 4


def test_join_rides_the_inflight_fetch():
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=1024)
    key = ("/f", 0, 3)
    got = []

    def fetcher():
        reservation = cache.reserve(key)
        yield env.timeout(5)
        reservation.fill(b"abc")

    def joiner():
        yield env.timeout(1)
        assert cache.get(key) is None
        waiter = cache.join(key)
        assert waiter is not None
        data = yield waiter
        got.append((data, env.now))

    env.process(fetcher())
    env.process(joiner())
    env.run()
    assert got == [(b"abc", 5.0)]
    assert cache.stats.overlap_hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0


def test_double_reserve_is_an_error():
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=64)
    cache.reserve("k")
    with pytest.raises(SimulationError):
        cache.reserve("k")


def test_lru_eviction_is_byte_bounded():
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=10)
    for i, data in enumerate([b"aaaa", b"bbbb", b"cc"]):
        cache.reserve(i).fill(data)
    assert cache.used_bytes == 10
    cache.get(0)                      # touch 0 -> 1 becomes LRU
    cache.reserve(3).fill(b"dddd")    # needs 4 bytes -> evicts 1
    assert 1 not in cache
    assert 0 in cache and 2 in cache and 3 in cache
    assert cache.stats.evictions == 1
    assert cache.used_bytes <= 10


def test_oversized_item_is_not_cached():
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=4)
    cache.reserve("big").fill(b"xxxxxxxx")
    assert "big" not in cache
    assert cache.used_bytes == 0


def test_abort_fails_joiners_without_crashing_env():
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=64)
    failures = []

    def fetcher():
        reservation = cache.reserve("k")
        yield env.timeout(2)
        reservation.abort(OSError("ost down"))

    def joiner():
        yield env.timeout(1)
        waiter = cache.join("k")
        try:
            yield waiter
        except OSError as exc:
            failures.append(repr(exc))

    env.process(fetcher())
    env.process(joiner())
    env.run()
    assert failures == ["OSError('ost down')"]
    assert "k" not in cache


def test_abort_with_no_joiners_is_silent():
    """The pre-defused abort event must not blow up env.step()."""
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=64)

    def fetcher():
        reservation = cache.reserve("k")
        yield env.timeout(1)
        reservation.abort()

    env.process(fetcher())
    env.run()  # would raise the KeyError if the event were not defused
    assert env.now == 1.0


def test_fill_twice_is_an_error_abort_twice_is_not():
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=64)
    r1 = cache.reserve("a")
    r1.fill(b"x")
    with pytest.raises(SimulationError):
        r1.fill(b"y")
    r2 = cache.reserve("b")
    r2.abort()
    r2.abort()  # idempotent


def test_prefetch_fill_counts_separately():
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=64)
    cache.reserve("a").fill(b"x", prefetched=True)
    cache.reserve("b").fill(b"y")
    assert cache.stats.prefetch_fills == 1
    assert cache.stats.misses == 2


def test_hit_rate_counts_hits_and_overlaps():
    env = Environment()
    cache = ReadAheadCache(env, capacity_bytes=64)
    cache.reserve("a").fill(b"x")
    cache.get("a")
    assert cache.stats.hit_rate() == pytest.approx(0.5)
    assert cache.stats.lookups == 2
