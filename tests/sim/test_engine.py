"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(5.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [5.0]
    assert env.now == 5.0


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc():
        v = yield env.timeout(1.0, value="hello")
        got.append(v)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(proc("a", 3))
    env.process(proc("b", 1))
    env.process(proc("c", 2))
    env.run()
    assert order == [("b", 1), ("c", 2), ("a", 3)]


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abcde":
        env.process(proc(name))
    env.run()
    assert order == list("abcde")


def test_process_return_value_propagates():
    env = Environment()
    results = []

    def child():
        yield env.timeout(2)
        return 42

    def parent():
        value = yield env.process(child())
        results.append((value, env.now))

    env.process(parent())
    env.run()
    assert results == [(42, 2.0)]


def test_waiting_on_finished_process_resumes_immediately():
    env = Environment()
    seen = []

    def child():
        yield env.timeout(1)
        return "done"

    def parent(child_proc):
        yield env.timeout(5)
        value = yield child_proc  # already processed
        seen.append((value, env.now))

    cp = env.process(child())
    env.process(parent(cp))
    env.run()
    assert seen == [("done", 5.0)]


def test_exception_in_child_propagates_to_parent():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1)
        raise RuntimeError("boom")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_run_until_time_stops_clock_there():
    env = Environment()

    def proc():
        yield env.timeout(100)

    env.process(proc())
    env.run(until=10)
    assert env.now == 10


def test_run_until_event_returns_value():
    env = Environment()

    def child():
        yield env.timeout(3)
        return "payload"

    proc = env.process(child())
    assert env.run(until=proc) == "payload"
    assert env.now == 3


def test_run_until_past_time_rejected():
    env = Environment()

    def proc():
        yield env.timeout(5)

    env.process(proc())
    env.run()
    with pytest.raises(ValueError):
        env.run(until=1)


def test_yield_non_event_raises_inside_process():
    env = Environment()
    caught = []

    def proc():
        try:
            yield 12345
        except SimulationError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.run()
    assert caught and "non-event" in caught[0]


def test_event_manual_succeed():
    env = Environment()
    got = []

    def waiter(ev):
        value = yield ev
        got.append((value, env.now))

    def firer(ev):
        yield env.timeout(7)
        ev.succeed("fired")

    ev = env.event()
    env.process(waiter(ev))
    env.process(firer(ev))
    env.run()
    assert got == [("fired", 7.0)]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_allof_waits_for_all():
    env = Environment()
    got = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        result = yield AllOf(env, [t1, t2])
        got.append((sorted(result.values()), env.now))

    env.process(proc())
    env.run()
    assert got == [(["a", "b"], 5.0)]


def test_anyof_fires_on_first():
    env = Environment()
    got = []

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield AnyOf(env, [t1, t2])
        got.append((list(result.values()), env.now))

    env.process(proc())
    env.run()
    assert got == [(["fast"], 1.0)]


def test_allof_empty_fires_immediately():
    env = Environment()
    got = []

    def proc():
        result = yield env.all_of([])
        got.append((result, env.now))

    env.process(proc())
    env.run()
    assert got == [({}, 0.0)]


def test_interrupt_delivers_cause():
    env = Environment()
    seen = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            seen.append((intr.cause, env.now))

    def attacker(proc):
        yield env.timeout(2)
        proc.interrupt("preempted")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert seen == [("preempted", 2.0)]


def test_cannot_interrupt_dead_process():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_peek_reports_next_event_time():
    env = Environment()

    def proc():
        yield env.timeout(4)

    env.process(proc())
    env.step()  # consume the initialize event
    assert env.peek() == 4.0


def test_nested_process_chain_depth():
    env = Environment()
    trace = []

    def level(n):
        if n > 0:
            yield env.process(level(n - 1))
        yield env.timeout(1)
        trace.append(n)

    env.process(level(5))
    env.run()
    assert trace == [0, 1, 2, 3, 4, 5]
    assert env.now == 6.0
