"""Tombstone detach + lazy sweep regression tests.

Before PR 7, ``Process.interrupt`` removed the waiter's callback with
``list.remove`` — an O(n) scan that goes quadratic when many processes
park on one wide event (the speculative-execution cancellation shape).
The live engine tombstones the slot in O(1) and compacts the list
lazily; these tests pin the behaviour the sweep must preserve.
"""

import pytest

from repro.sim.engine import Environment, Interrupt, SimulationError


def test_wide_event_interrupt_detach_compacts_and_preserves_order():
    env = Environment()
    gate = env.event()
    resumed = []
    n = 600

    def waiter(i):
        try:
            value = yield gate
            resumed.append((i, value))
        except Interrupt:
            pass

    procs = [env.process(waiter(i)) for i in range(n)]

    def driver():
        yield env.timeout(1.0)
        # reap youngest-first (preemption order): every detach would hit
        # the tail of the shared callback list under list.remove
        for i in range(n - 1, -1, -1):
            if i % 10 != 0:
                procs[i].interrupt("preempted")
        # detach is synchronous and the lazy sweep must have compacted
        # the tombstones instead of letting the list grow unbounded
        assert len(gate.callbacks) < n // 2
        yield env.timeout(1.0)
        gate.succeed("open")

    env.process(driver())
    env.run()
    # survivors resume in their original registration order — the sweep
    # re-indexed the remaining waiters without reordering them
    assert resumed == [(i, "open") for i in range(0, n, 10)]


def test_interrupt_victim_waiting_on_condition():
    env = Environment()
    seen = []

    def victim():
        try:
            yield env.all_of([env.timeout(50), env.timeout(60)])
        except Interrupt as intr:
            seen.append((intr.cause, env.now))

    def sniper(proc):
        yield env.timeout(2)
        proc.interrupt("cancelled")

    p = env.process(victim())
    env.process(sniper(p))
    env.run()
    assert seen == [("cancelled", 2.0)]


def test_interleaved_detach_and_fire_after_sweep():
    """Interrupt half the waiters, fire, then the rest were never lost."""
    env = Environment()
    gate = env.event()
    resumed = []
    n = 100

    def waiter(i):
        try:
            yield gate
            resumed.append(i)
        except Interrupt:
            pass

    procs = [env.process(waiter(i)) for i in range(n)]

    def driver():
        yield env.timeout(1.0)
        for i in range(n - 1, -1, -2):  # odd indices, youngest first
            procs[i].interrupt("odd one out")
        gate.succeed()

    env.process(driver())
    env.run()
    assert resumed == list(range(0, n, 2))


def test_process_repr_uses_generator_qualname():
    env = Environment()

    def shuffle_fetcher():
        yield env.timeout(1)

    p = env.process(shuffle_fetcher())
    assert "shuffle_fetcher" in repr(p)
    assert "alive" in repr(p)
    env.run()
    assert "processed" in repr(p)


def test_event_repr_reports_lifecycle_state():
    env = Environment()
    ev = env.event()
    assert "pending" in repr(ev)
    ev.succeed(1)
    assert "triggered" in repr(ev)


def test_non_event_yield_error_names_the_process():
    env = Environment()

    def bad_merger():
        yield 12345

    env.process(bad_merger())
    with pytest.raises(SimulationError, match="bad_merger"):
        env.run()


def test_non_event_yield_error_names_offending_value():
    env = Environment()
    caught = []

    def off_script():
        try:
            yield "not-an-event"
        except SimulationError as exc:
            caught.append(str(exc))

    env.process(off_script())
    env.run()
    assert caught and "off_script" in caught[0]
    assert "not-an-event" in caught[0]
