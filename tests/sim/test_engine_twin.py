"""Twin-world equivalence: the live engine vs the frozen legacy engine.

The PR-7 engine rebuild (slotted events, pooled free-lists, same-time
FIFO buckets, tombstone detach) must be a pure performance change: with
the default knobs every simulation pops the same events in the same
order at the same clocks. These tests drive a seeded random program —
mixed timeouts, zero-delay handoffs, manual events, process joins,
AllOf/AnyOf conditions, and interrupts — through both engines and
require the full execution traces to match at 1e-9.
"""

import random

import pytest

from repro.sim._legacy import LegacyEnvironment
from repro.sim.engine import Environment, Interrupt

ENGINES = [
    pytest.param(Environment, id="live"),
    pytest.param(LegacyEnvironment, id="legacy"),
]


def _make_script(seed, n_workers=12, n_steps=8, n_gates=3):
    """Precompute every random choice so both worlds see one schedule."""
    rng = random.Random(seed)
    kinds = ["timeout", "zero", "gate", "spawn", "both", "either"]
    script = [[(rng.choice(kinds), round(rng.uniform(0.1, 3.0), 3))
               for _ in range(n_steps)]
              for _ in range(n_workers)]
    snipes = [(rng.randrange(n_workers), round(rng.uniform(0.5, 6.0), 3))
              for _ in range(n_workers // 2)]
    gate_fires = [round(rng.uniform(1.0, 8.0), 3) for _ in range(n_gates)]
    return script, snipes, gate_fires


def _run_chaos(env, interrupt_cls, seed):
    """Drive the seeded program on ``env``; returns the execution trace."""
    script, snipes, gate_fires = _make_script(seed)
    gates = [env.event() for _ in gate_fires]
    trace = []

    def child(delay, tag):
        yield env.timeout(delay)
        trace.append(("child", tag, env.now))
        return tag

    def worker(wid, steps):
        try:
            for i, (kind, delay) in enumerate(steps):
                if kind == "timeout":
                    yield env.timeout(delay)
                elif kind == "zero":
                    yield env.timeout(0.0)
                elif kind == "gate":
                    gate = gates[(wid + i) % len(gates)]
                    yield env.any_of([gate, env.timeout(delay)])
                elif kind == "spawn":
                    value = yield env.process(child(delay / 2, (wid, i)))
                    trace.append(("joined", value, env.now))
                elif kind == "both":
                    yield env.all_of([env.timeout(delay),
                                      env.timeout(delay / 3)])
                else:  # either
                    yield env.any_of([env.timeout(delay),
                                      env.timeout(delay * 2)])
                trace.append(("step", wid, i, env.now))
        except interrupt_cls as intr:
            trace.append(("interrupted", wid, intr.cause, env.now))

    workers = [env.process(worker(w, steps))
               for w, steps in enumerate(script)]

    def firer(i, at):
        yield env.timeout(at)
        gates[i].succeed(("gate", i))
        trace.append(("fired", i, env.now))

    for i, at in enumerate(gate_fires):
        env.process(firer(i, at))

    def sniper(k, target, at):
        yield env.timeout(at)
        if workers[target].is_alive:
            workers[target].interrupt(f"preempt-{k}")
            trace.append(("sniped", target, env.now))

    for k, (target, at) in enumerate(snipes):
        env.process(sniper(k, target, at))

    env.run()
    return trace, env.now, env._seq


def _assert_traces_match(legacy, live):
    legacy_trace, legacy_now, legacy_seq = legacy
    live_trace, live_now, live_seq = live
    assert len(live_trace) == len(legacy_trace)
    for got, want in zip(live_trace, legacy_trace):
        # every record ends with the clock; everything before it is
        # discrete (tags, ids, causes) and must match exactly
        assert got[:-1] == want[:-1]
        assert got[-1] == pytest.approx(want[-1], abs=1e-9)
    assert live_now == pytest.approx(legacy_now, abs=1e-9)
    assert live_seq == legacy_seq  # same number of scheduler insertions


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 2024])
def test_randomized_twin_world_identical_order(seed):
    legacy = _run_chaos(LegacyEnvironment(), Interrupt, seed)
    live = _run_chaos(Environment(), Interrupt, seed)
    _assert_traces_match(legacy, live)


def test_twin_world_exception_surfaces_identically():
    def boom_world(env):
        def victim():
            yield env.timeout(2.5)
            raise RuntimeError("spilled the shuffle")

        def bystander():
            yield env.timeout(1.0)

        env.process(bystander())
        env.process(victim())
        with pytest.raises(RuntimeError, match="spilled the shuffle"):
            env.run()
        return env.now

    legacy_now = boom_world(LegacyEnvironment())
    live_now = boom_world(Environment())
    assert live_now == pytest.approx(legacy_now, abs=1e-9)


@pytest.mark.parametrize("env_cls", ENGINES)
def test_zero_delay_handoffs_preserve_fifo(env_cls):
    """Delay-0 timeouts at one timestamp fire in schedule order."""
    env = env_cls()
    order = []

    def hop(name):
        yield env.timeout(1.0)
        for i in range(3):
            yield env.timeout(0.0)
        order.append(name)

    for name in "abcde":
        env.process(hop(name))
    env.run()
    assert order == list("abcde")
    assert env.now == 1.0


def test_pooled_events_do_not_leak_state():
    """Recycled Timeout/Event objects must come back clean.

    Runs enough churn that the free-lists are exercised, with values and
    callbacks attached to some events, and checks no value or callback
    bleeds into a later, unrelated event.
    """
    env = Environment()
    got = []

    def churn(i):
        v = yield env.timeout(0.1, value=("payload", i))
        got.append(v)
        bare = yield env.timeout(0.1)
        assert bare is None  # recycled event must not carry an old value
        ev = env.event()
        ev.succeed()
        yield ev
        assert ev.value is None

    for i in range(200):
        env.process(churn(i))
    env.run()
    assert got == [("payload", i) for i in range(200)]
