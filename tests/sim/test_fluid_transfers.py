"""Fluid-approximation knob on SharedBandwidth.

Fluid mode (opt-in, default OFF) collapses an uncontended transfer to
one closed-form completion timeout instead of entering the PS heap.
The contract: uncontended transfers are *bit-identical* to the PS path
(same events, same times, same observer sequence, same accounting), and
a second arrival re-expands the in-flight transfer with its exact
remaining bytes so contention is still modelled precisely.
"""

import pytest

import repro.sim.resources as resources
from repro.sim.engine import Environment
from repro.sim.resources import SharedBandwidth


def test_fluid_defaults_off():
    assert resources.FLUID_TRANSFERS is False
    env = Environment()
    assert SharedBandwidth(env, 10.0).fluid is False
    assert SharedBandwidth(env, 10.0, fluid=True).fluid is True


def _uncontended_world(fluid):
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0, fluid=fluid)
    observer_calls = []
    pipe.observer = observer_calls.append
    completions = []

    def one(name, at, nbytes, latency=0.0):
        yield env.timeout(at)
        yield pipe.transfer(nbytes, latency=latency)
        completions.append((name, env.now))

    # strictly serial arrivals: the pipe is idle at every admission
    env.process(one("a", 0.0, 500.0))
    env.process(one("b", 10.0, 250.0, latency=0.5))
    env.process(one("c", 20.0, 100.0))
    env.run()
    return {
        "completions": completions,
        "observer_calls": observer_calls,
        "busy_time": pipe.busy_time,
        "bytes_moved": pipe.bytes_moved,
        "utilization": pipe.utilization(),
        "now": env.now,
        "n_events": env._seq,
    }


def test_fluid_uncontended_bit_identical_to_ps():
    ps = _uncontended_world(fluid=False)
    fl = _uncontended_world(fluid=True)
    assert fl == ps  # exact: same events, clocks, observers, accounting


def _contended_world(fluid):
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0, fluid=fluid)
    completions = {}

    def one(name, at, nbytes):
        yield env.timeout(at)
        yield pipe.transfer(nbytes)
        completions[name] = env.now

    # "b" arrives mid-flight: in fluid mode "a" must re-expand into the
    # PS heap with exactly its remaining bytes (1000 - 2s*100 = 800)
    env.process(one("a", 0.0, 1000.0))
    env.process(one("b", 2.0, 300.0))
    env.process(one("c", 30.0, 100.0))  # idle again by then
    env.run()
    return completions, pipe.busy_time, pipe.bytes_moved


def test_fluid_collapse_preserves_ps_timings():
    ps_done, ps_busy, ps_bytes = _contended_world(fluid=False)
    fl_done, fl_busy, fl_bytes = _contended_world(fluid=True)
    assert fl_done.keys() == ps_done.keys()
    for name in ps_done:
        assert fl_done[name] == pytest.approx(ps_done[name], abs=1e-9)
    assert fl_busy == pytest.approx(ps_busy, abs=1e-9)
    assert fl_bytes == ps_bytes


def test_fluid_n_active_counts_inflight_transfer():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0, fluid=True)
    snapshots = []

    def mover():
        yield pipe.transfer(500.0)
        snapshots.append(("done", pipe.n_active, env.now))

    def sampler():
        yield env.timeout(1.0)
        snapshots.append(("mid", pipe.n_active, env.now))

    env.process(mover())
    env.process(sampler())
    env.run()
    assert snapshots == [("mid", 1, 1.0), ("done", 0, 5.0)]


def test_fluid_knob_flips_at_module_level():
    """FLUID_TRANSFERS seeds the per-pipe default at construction."""
    env = Environment()
    resources.FLUID_TRANSFERS = True
    try:
        assert SharedBandwidth(env, 10.0).fluid is True
        # explicit argument still wins over the module default
        assert SharedBandwidth(env, 10.0, fluid=False).fluid is False
    finally:
        resources.FLUID_TRANSFERS = False
