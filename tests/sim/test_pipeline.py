"""Unit tests for the bounded fan-out window."""

import pytest

from repro.sim import Environment, FanoutWindow, bounded_fanout


def run_fanout(env, factories, window):
    proc = env.process(bounded_fanout(env, factories, window))
    env.run()
    return proc.value


def make_factory(env, delay, value, events):
    def factory():
        events.append(("start", value, env.now))
        yield env.timeout(delay)
        events.append(("end", value, env.now))
        return value
    return factory


def test_results_come_back_in_input_order():
    env = Environment()
    events = []
    # Later factories finish earlier; results must stay input-ordered.
    factories = [make_factory(env, delay, i, events)
                 for i, delay in enumerate([5, 3, 1])]
    assert run_fanout(env, factories, 2) == [0, 1, 2]


def test_window_bounds_concurrency():
    env = Environment()
    events = []
    factories = [make_factory(env, 2, i, events) for i in range(6)]
    run_fanout(env, factories, 2)
    active = 0
    peak = 0
    for kind, _value, _t in events:
        active += 1 if kind == "start" else -1
        peak = max(peak, active)
    assert peak == 2


def test_window_of_one_is_strictly_serial():
    env = Environment()
    events = []
    factories = [make_factory(env, 2, i, events) for i in range(3)]
    assert run_fanout(env, factories, 1) == [0, 1, 2]
    assert [e for e in events] == [
        ("start", 0, 0.0), ("end", 0, 2.0),
        ("start", 1, 2.0), ("end", 1, 4.0),
        ("start", 2, 4.0), ("end", 2, 6.0),
    ]


def test_unbounded_runs_everything_at_once():
    env = Environment()
    events = []
    factories = [make_factory(env, 2, i, events) for i in range(4)]
    assert run_fanout(env, factories, 0) == [0, 1, 2, 3]
    assert all(t == 0.0 for kind, _v, t in events if kind == "start")
    assert env.now == 2.0


def test_window_larger_than_input_is_unbounded():
    env = Environment()
    events = []
    factories = [make_factory(env, 2, i, events) for i in range(3)]
    assert run_fanout(env, factories, 16) == [0, 1, 2]
    assert env.now == 2.0


def test_empty_input_returns_empty_list():
    env = Environment()
    assert run_fanout(env, [], 4) == []
    assert env.now == 0.0


def test_failure_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("boom")

    def good():
        yield env.timeout(2)
        return "ok"

    proc = env.process(bounded_fanout(env, [bad, good], 1))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()
    assert not proc.ok


def test_negative_window_treated_as_unbounded():
    env = Environment()
    events = []
    factories = [make_factory(env, 1, i, events) for i in range(3)]
    assert run_fanout(env, factories, -1) == [0, 1, 2]
    assert env.now == 1.0


# ---------------------------------------------------------- FanoutWindow

def drain_window(env, window):
    def consumer():
        result = yield from window.drain()
        return result
    proc = env.process(consumer())
    env.run()
    return proc.value


def test_window_drain_returns_submission_order():
    env = Environment()
    events = []
    window = FanoutWindow(env, max_inflight=2)
    for i, delay in enumerate([5, 3, 1]):
        window.submit(make_factory(env, delay, i, events))
    window.close()
    assert drain_window(env, window) == [0, 1, 2]


def test_window_bounds_dynamic_concurrency():
    env = Environment()
    events = []
    window = FanoutWindow(env, max_inflight=2)
    for i in range(6):
        window.submit(make_factory(env, 2, i, events))
    window.close()
    assert drain_window(env, window) == list(range(6))
    active = peak = 0
    for kind, _value, _t in events:
        active += 1 if kind == "start" else -1
        peak = max(peak, active)
    assert peak == 2


def test_window_accepts_submissions_while_draining():
    """Work discovered mid-flight (the overlapped-shuffle shape):
    a producer keeps submitting while the consumer already drains."""
    env = Environment()
    events = []
    window = FanoutWindow(env, max_inflight=1)
    window.submit(make_factory(env, 1, 0, events))

    def producer():
        yield env.timeout(0.5)
        window.submit(make_factory(env, 1, 1, events))
        yield env.timeout(2.0)
        window.submit(make_factory(env, 1, 2, events))
        window.close()

    env.process(producer())
    assert drain_window(env, window) == [0, 1, 2]
    assert env.now == 3.5  # third submit at 2.5 runs serially after it


def test_window_unbounded_runs_all_submissions_at_once():
    env = Environment()
    events = []
    window = FanoutWindow(env, max_inflight=0)
    for i in range(4):
        window.submit(make_factory(env, 2, i, events))
    window.close()
    assert drain_window(env, window) == [0, 1, 2, 3]
    assert env.now == 2.0


def test_window_empty_close_drains_immediately():
    env = Environment()
    window = FanoutWindow(env)
    window.close()
    assert drain_window(env, window) == []
    assert env.now == 0.0


def test_window_submit_after_close_raises():
    env = Environment()
    window = FanoutWindow(env)
    window.close()
    with pytest.raises(RuntimeError, match="close"):
        window.submit(lambda: iter(()))


def test_window_failure_reraised_from_drain():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("boom")

    window = FanoutWindow(env, max_inflight=2)
    window.submit(bad)
    window.submit(make_factory(env, 5, "ok", []))
    window.close()

    def consumer():
        yield from window.drain()

    proc = env.process(consumer())
    with pytest.raises(RuntimeError, match="boom"):
        env.run()
    assert not proc.ok


def test_window_failure_while_consumer_waits_elsewhere():
    """A constituent failing while nobody waits on the window must not
    escape env.step(); drain() reports it later."""
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("late boom")

    window = FanoutWindow(env)
    window.submit(bad)

    def consumer():
        yield env.timeout(10)  # busy elsewhere while the failure lands
        window.close()
        yield from window.drain()

    proc = env.process(consumer())
    with pytest.raises(RuntimeError, match="late boom"):
        env.run()
    assert not proc.ok
