"""Unit tests for Resource, Container, Store and SharedBandwidth."""

import pytest

from repro.sim import Container, Environment, Resource, SharedBandwidth, Store
from repro.sim.engine import SimulationError


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def worker(i):
        req = res.request()
        yield req
        granted.append((i, env.now))
        yield env.timeout(10)
        res.release(req)

    for i in range(3):
        env.process(worker(i))
    env.run()
    assert granted == [(0, 0.0), (1, 0.0), (2, 10.0)]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(i):
        req = res.request()
        yield req
        order.append(i)
        yield env.timeout(1)
        res.release(req)

    for i in range(5):
        env.process(worker(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_unowned_raises():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # double release

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    times = []

    def worker():
        with res.request() as req:
            yield req
            yield env.timeout(2)
        times.append(env.now)

    env.process(worker())
    env.process(worker())
    env.run()
    assert times == [2.0, 4.0]


def test_resource_queue_length_tracking():
    env = Environment()
    res = Resource(env, capacity=1)
    observed = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(5)
        res.release(req)

    def waiter():
        req = res.request()
        yield req
        res.release(req)

    def observer():
        yield env.timeout(1)
        observed.append((res.in_use, res.queue_length))

    env.process(holder())
    env.process(waiter())
    env.process(waiter())
    env.process(observer())
    env.run()
    assert observed == [(1, 2)]


# --------------------------------------------------------------- Container
def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100, init=10)
    got = []

    def consumer():
        yield tank.get(30)
        got.append(env.now)

    def producer():
        yield env.timeout(3)
        yield tank.put(25)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [3.0]
    assert tank.level == pytest.approx(5.0)


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    done = []

    def producer():
        yield tank.put(5)
        done.append(env.now)

    def consumer():
        yield env.timeout(2)
        yield tank.get(7)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert done == [2.0]


def test_container_init_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)


# -------------------------------------------------------------------- Store
def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    done = []

    def producer():
        yield store.put("a")
        yield store.put("b")
        done.append(env.now)

    def consumer():
        yield env.timeout(4)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert done == [4.0]


# --------------------------------------------------------- SharedBandwidth
def test_single_transfer_time_is_size_over_capacity():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0)
    done = []

    def proc():
        yield pipe.transfer(500)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [pytest.approx(5.0)]


def test_two_equal_transfers_share_bandwidth():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0)
    done = []

    def proc(i):
        yield pipe.transfer(500)
        done.append((i, env.now))

    env.process(proc(0))
    env.process(proc(1))
    env.run()
    # Each effectively gets 50 B/s for the full duration.
    assert done[0][1] == pytest.approx(10.0)
    assert done[1][1] == pytest.approx(10.0)


def test_staggered_transfers_processor_sharing():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0)
    done = {}

    def proc(name, start, nbytes):
        yield env.timeout(start)
        yield pipe.transfer(nbytes)
        done[name] = env.now

    # A starts alone; B joins at t=2. A has 300B left at t=2; they share
    # 50B/s each. A finishes at 2 + 300/50 = 8. B then gets full bandwidth:
    # B moved 300B by t=8, 200B left at 100B/s -> t=10.
    env.process(proc("a", 0, 500))
    env.process(proc("b", 2, 500))
    env.run()
    assert done["a"] == pytest.approx(8.0)
    assert done["b"] == pytest.approx(10.0)


def test_transfer_latency_delays_admission():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0)
    done = []

    def proc():
        yield pipe.transfer(100, latency=3.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [pytest.approx(4.0)]


def test_zero_byte_transfer_completes_instantly():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=10.0)
    done = []

    def proc():
        yield pipe.transfer(0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_bytes_moved_accounting():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=10.0)

    def proc():
        yield pipe.transfer(30)
        yield pipe.transfer(70)

    env.process(proc())
    env.run()
    assert pipe.bytes_moved == pytest.approx(100.0)


def test_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SharedBandwidth(env, capacity=0)


def test_many_concurrent_transfers_aggregate_to_capacity():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0)
    finish = []

    def proc():
        yield pipe.transfer(100)
        finish.append(env.now)

    for _ in range(10):
        env.process(proc())
    env.run()
    # 10 x 100B through a 100 B/s pipe must take exactly 10s in aggregate.
    assert all(t == pytest.approx(10.0) for t in finish)


def test_busy_time_tracks_active_periods():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0)

    def proc():
        yield pipe.transfer(200)       # busy [0, 2]
        yield env.timeout(3)           # idle [2, 5]
        yield pipe.transfer(100)       # busy [5, 6]

    env.process(proc())
    env.run()
    assert pipe.busy_time == pytest.approx(3.0)
    assert pipe.utilization() == pytest.approx(3.0 / 6.0)


def test_utilization_window():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0)

    def proc():
        yield env.timeout(8)
        yield pipe.transfer(200)       # busy [8, 10]

    env.process(proc())
    env.run()
    assert pipe.utilization(since=8.0) == pytest.approx(1.0)
    assert pipe.utilization() == pytest.approx(0.2)


def test_utilization_empty_window():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=10.0)
    assert pipe.utilization() == 0.0


def test_concurrent_transfers_count_busy_once():
    env = Environment()
    pipe = SharedBandwidth(env, capacity=100.0)

    def proc():
        yield pipe.transfer(100)

    env.process(proc())
    env.process(proc())
    env.run()
    # Two 100B transfers share the pipe for 2s: busy 2s, not 4.
    assert env.now == pytest.approx(2.0)
    assert pipe.busy_time == pytest.approx(2.0)
