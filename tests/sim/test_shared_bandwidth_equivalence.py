"""Virtual-time SharedBandwidth vs the legacy O(n)-rescan model.

The rework must be invisible at the simulation level: identical
completion times and order on arbitrary schedules, identical busy-time
accounting, and no livelock on the sub-byte-residue edge the legacy
force-finish branch papered over.
"""

import random

import pytest

from repro.sim import Environment, SharedBandwidth
from repro.sim._legacy import LegacySharedBandwidth


def drive_schedule(pipe_cls, schedule, capacity=100.0):
    """Run (delay, nbytes, latency) triples; return [(idx, finish)]."""
    env = Environment()
    pipe = pipe_cls(env, capacity, "pipe")
    done = []

    def one(idx, delay, nbytes, latency):
        yield env.timeout(delay)
        yield pipe.transfer(nbytes, latency=latency)
        done.append((idx, env.now))

    for idx, (delay, nbytes, latency) in enumerate(schedule):
        env.process(one(idx, delay, nbytes, latency))
    env.run()
    return done, pipe


HAND_SCHEDULES = [
    # lone transfer
    [(0.0, 500, 0.0)],
    # two equal, simultaneous
    [(0.0, 500, 0.0), (0.0, 500, 0.0)],
    # staggered join (the docstring example: a=8, b=10)
    [(0.0, 500, 0.0), (2.0, 500, 0.0)],
    # latency-delayed admission mixed with direct admissions
    [(0.0, 100, 3.0), (1.0, 200, 0.0), (1.0, 50, 0.5)],
    # zero-byte transfers complete instantly amid real ones
    [(0.0, 0, 0.0), (0.0, 300, 0.0), (0.5, 0, 0.0)],
]


@pytest.mark.parametrize("schedule", HAND_SCHEDULES)
def test_hand_schedules_match_legacy(schedule):
    new, new_pipe = drive_schedule(SharedBandwidth, schedule)
    old, old_pipe = drive_schedule(LegacySharedBandwidth, schedule)
    assert [i for i, _ in new] == [i for i, _ in old]
    for (_, t_new), (_, t_old) in zip(new, old):
        assert t_new == pytest.approx(t_old, abs=1e-9)
    assert new_pipe.bytes_moved == pytest.approx(old_pipe.bytes_moved)
    assert new_pipe.busy_time == pytest.approx(old_pipe.busy_time)


@pytest.mark.parametrize("seed", [1, 7, 20180710])
def test_randomized_schedules_match_legacy(seed):
    rng = random.Random(seed)
    schedule = [
        (rng.random() * 5.0,
         rng.randrange(0, 100_000),
         rng.choice([0.0, 0.0, rng.random() * 0.01]))
        for _ in range(200)
    ]
    new, _ = drive_schedule(SharedBandwidth, schedule, capacity=1e6)
    old, _ = drive_schedule(LegacySharedBandwidth, schedule, capacity=1e6)
    assert [i for i, _ in new] == [i for i, _ in old]
    for (_, t_new), (_, t_old) in zip(new, old):
        assert t_new == pytest.approx(t_old, abs=1e-9)


def test_completion_order_follows_admission_on_ties():
    """Equal-size simultaneous transfers finish in admission order."""
    env = Environment()
    pipe = SharedBandwidth(env, 100.0)
    order = []

    def one(i):
        yield pipe.transfer(100)
        order.append(i)

    for i in range(8):
        env.process(one(i))
    env.run()
    assert order == list(range(8))


def test_sub_byte_residue_does_not_livelock():
    """Regression for the force-finish branch (satellite a).

    At a huge ``now`` a tiny residual drain time underflows
    (``now + delay == now``); without the force-finish floor the pipe
    would reschedule the same instant forever. The engine would spin —
    so the real assertion is simply that ``env.run()`` returns.
    """
    env = Environment(initial_time=1e10)
    pipe = SharedBandwidth(env, capacity=1e9)
    done = []

    def one(nbytes, delay):
        yield env.timeout(delay)
        yield pipe.transfer(nbytes)
        done.append(env.now)

    # The overlap leaves residues far below the float resolution of
    # `now` (~2e-6 s at 1e10): 1e-7-scale drains quantize to zero.
    env.process(one(100.0, 0.0))
    env.process(one(100.0 + 1e-4, 0.0))
    env.process(one(0.5, 0.0))
    env.run()
    assert len(done) == 3
    assert all(t >= 1e10 for t in done)


def test_sub_byte_residue_livelock_legacy_parity():
    """The legacy model terminates on the same edge case; both agree."""
    def run(pipe_cls):
        env = Environment(initial_time=1e10)
        pipe = pipe_cls(env, capacity=1e9)
        done = []

        def one(nbytes):
            yield pipe.transfer(nbytes)
            done.append(env.now)

        for nbytes in (100.0, 100.0 + 1e-4, 0.5):
            env.process(one(nbytes))
        env.run()
        return done

    new = run(SharedBandwidth)
    old = run(LegacySharedBandwidth)
    assert len(new) == len(old) == 3
    for t_new, t_old in zip(new, old):
        assert t_new == pytest.approx(t_old, abs=1e-6)


def test_vtime_resets_when_pipe_idles():
    """Idle reset keeps the counter bounded over long runs."""
    env = Environment()
    pipe = SharedBandwidth(env, 100.0)

    def one():
        yield pipe.transfer(200)
        yield env.timeout(5)
        yield pipe.transfer(200)

    env.process(one())
    env.run()
    assert pipe._vtime == 0.0
    assert pipe.n_active == 0
