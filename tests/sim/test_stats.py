"""Tests for monitors and interval timers."""

import pytest

from repro.sim import Environment, IntervalTimer, Monitor


def test_monitor_records_time_and_value():
    env = Environment()
    mon = Monitor(env, "util")

    def proc():
        mon.record(1.0)
        yield env.timeout(2)
        mon.record(3.0)
        yield env.timeout(2)
        mon.record(5.0)

    env.process(proc())
    env.run()
    assert mon.times == [0.0, 2.0, 4.0]
    assert mon.values == [1.0, 3.0, 5.0]
    assert len(mon) == 3


def test_monitor_statistics():
    env = Environment()
    mon = Monitor(env)
    for v in (2.0, 4.0, 6.0):
        mon.record(v)
    assert mon.mean == 4.0
    assert mon.minimum == 2.0
    assert mon.maximum == 6.0
    assert mon.stdev == pytest.approx(2.0)


def test_monitor_stdev_single_sample_is_zero():
    env = Environment()
    mon = Monitor(env)
    mon.record(7.0)
    assert mon.stdev == 0.0


def test_monitor_empty_mean_raises():
    env = Environment()
    mon = Monitor(env, "empty")
    with pytest.raises(ValueError):
        _ = mon.mean
    with pytest.raises(ValueError):
        mon.time_average()


def test_monitor_empty_extrema_raise_with_name():
    env = Environment()
    mon = Monitor(env, "net.util")
    for attr in ("minimum", "maximum", "last"):
        with pytest.raises(ValueError, match="net.util"):
            getattr(mon, attr)


def test_monitor_last():
    env = Environment()
    mon = Monitor(env)
    mon.record(3.0)
    mon.record(1.0)
    assert mon.last == 1.0


def test_monitor_time_average_step_function():
    env = Environment()
    mon = Monitor(env)

    def proc():
        mon.record(0.0)        # value 0 held [0, 4)
        yield env.timeout(4)
        mon.record(10.0)       # value 10 held [4, 8)
        yield env.timeout(4)

    env.process(proc())
    env.run()
    assert mon.time_average() == pytest.approx(5.0)
    # Explicit horizon extends the last value's hold.
    assert mon.time_average(until=12) == pytest.approx(
        (0 * 4 + 10 * 8) / 12)


def test_monitor_time_average_zero_span():
    env = Environment()
    mon = Monitor(env)
    mon.record(42.0)
    assert mon.time_average() == 42.0


def test_monitor_record_many_lists():
    env = Environment()
    mon = Monitor(env)
    mon.record_many([0.0, 1.0, 2.5], [10, 20, 30])
    assert mon.times == [0.0, 1.0, 2.5]
    assert mon.values == [10.0, 20.0, 30.0]
    assert mon.mean == 20.0


def test_monitor_record_many_numpy_arrays():
    np = pytest.importorskip("numpy")
    env = Environment()
    mon = Monitor(env)
    mon.record_many(np.arange(4, dtype=np.float64),
                    np.array([1, 2, 3, 4], dtype=np.int64))
    assert mon.times == [0.0, 1.0, 2.0, 3.0]
    assert mon.values == [1.0, 2.0, 3.0, 4.0]


def test_monitor_record_many_misaligned_rejected():
    np = pytest.importorskip("numpy")
    env = Environment()
    mon = Monitor(env)
    with pytest.raises(ValueError):
        mon.record_many([0.0, 1.0], [5.0])
    with pytest.raises(ValueError):
        mon.record_many(np.zeros(2), np.zeros(3))
    assert len(mon) == 0


def test_monitor_record_many_interleaves_with_record():
    env = Environment()
    mon = Monitor(env)

    def proc():
        mon.record(1.0)
        yield env.timeout(2)
        mon.record_many([2.0, 2.0], [5.0, 7.0])
        mon.record(9.0)

    env.process(proc())
    env.run()
    assert mon.times == [0.0, 2.0, 2.0, 2.0]
    assert mon.values == [1.0, 5.0, 7.0, 9.0]
    assert mon.last == 9.0


def test_monitor_survives_column_flush_boundary():
    """The cached chunk buffers stay valid across FloatColumn flushes."""
    env = Environment()
    mon = Monitor(env)
    n = 5000  # comfortably past the column flush threshold
    for i in range(n):
        mon.record(float(i))
    assert len(mon) == n
    assert mon.values[0] == 0.0
    assert mon.last == float(n - 1)
    assert mon.mean == pytest.approx((n - 1) / 2)


def test_interval_timer_accumulates():
    timer = IntervalTimer("t")
    timer.add("read", 1.0)
    timer.add("read", 2.0)
    timer.add("plot", 0.5)
    assert timer.total("read") == 3.0
    assert timer.count("read") == 2
    assert timer.mean("read") == 1.5
    assert timer.total("missing") == 0.0
    assert timer.as_dict() == {"read": 3.0, "plot": 0.5}


def test_interval_timer_negative_rejected():
    timer = IntervalTimer()
    with pytest.raises(ValueError):
        timer.add("x", -1)


def test_interval_timer_mean_empty_raises():
    timer = IntervalTimer()
    with pytest.raises(ValueError):
        timer.mean("nope")


def test_interval_timer_merge():
    a = IntervalTimer()
    a.add("read", 1.0)
    b = IntervalTimer()
    b.add("read", 2.0)
    b.add("plot", 3.0)
    a.merge(b)
    assert a.total("read") == 3.0
    assert a.count("read") == 2
    assert a.total("plot") == 3.0
