"""The byte-accounted cache tier: capacity, LRU, spill, reload, stats."""

import pytest

from repro.mapreduce.shuffle import estimate_size
from repro.sparklike import MEMORY_AND_DISK, MEMORY_ONLY, SparkLikeError
from repro.sparklike.scheduler import TaskContext

from tests.sparklike.test_sparklike import make_ctx

TEN_INTS = estimate_size(list(range(10)))  # one 10-record partition


def counting_factory(calls):
    def counting(task, records):
        calls["n"] += 1
        return records
    return counting


# ------------------------------------------------------------ unit level
def test_lru_evicts_least_recently_used():
    ctx, _ = make_ctx(n_nodes=1, cache_capacity=2 * TEN_INTS)
    store = ctx.block_store
    task = TaskContext(ctx, ctx.nodes[0], 0, 0)
    records = list(range(10))
    list(store.put((1, 0), task, records, MEMORY_ONLY))
    list(store.put((1, 1), task, records, MEMORY_ONLY))
    assert store.get((1, 0)) is not None       # touch: (1,1) is now LRU
    list(store.put((1, 2), task, records, MEMORY_ONLY))
    assert store.get((1, 1)) is None           # evicted
    assert store.get((1, 0)) is not None
    assert store.get((1, 2)) is not None
    assert store.stats.evictions == 1


def test_capacity_is_per_node():
    ctx, _ = make_ctx(n_nodes=2, cache_capacity=TEN_INTS)
    store = ctx.block_store
    records = list(range(10))
    for pos, node in enumerate(ctx.nodes):
        task = TaskContext(ctx, node, 0, pos)
        list(store.put((1, pos), task, records, MEMORY_ONLY))
    # One full-capacity block per node: neither evicts the other.
    assert store.get((1, 0)) is not None
    assert store.get((1, 1)) is not None
    assert store.stats.evictions == 0


def test_memory_and_disk_spills_through_registry():
    ctx, _ = make_ctx(n_nodes=1, cache_capacity=TEN_INTS)
    store = ctx.block_store
    task = TaskContext(ctx, ctx.nodes[0], 0, 0)
    records = list(range(10))

    def driver():
        yield from store.put((1, 0), task, records, MEMORY_AND_DISK)
        yield from store.put((1, 1), task, records, MEMORY_AND_DISK)

    ctx.env.process(driver())
    ctx.env.run()
    assert store.has_spilled((1, 0))           # evicted -> shared storage
    assert not store.has_spilled((1, 1))       # still in memory
    assert ctx.metrics["cache_spills"] == 1
    # The spill really hit the HDFS namespace under the spill root.
    assert ctx.storage.listdir("/_sparklike/spill")


# ------------------------------------------------------------- end to end
def test_memory_only_eviction_recomputes():
    ctx, _ = make_ctx(n_nodes=1, cache_capacity=TEN_INTS)
    calls = {"n": 0}
    rdd = (ctx.parallelize(range(40), 4)
           .map_partitions(counting_factory(calls))
           .cache())
    assert sorted(rdd.collect()) == list(range(40))
    assert calls["n"] == 4
    assert ctx.block_store.stats.evictions >= 3
    assert sorted(rdd.collect()) == list(range(40))
    # Only one block fits: at least the evicted partitions recompute.
    assert calls["n"] >= 7
    assert ctx.metrics["cache_evictions"] >= 3


def test_memory_and_disk_reloads_instead_of_recomputing():
    ctx, _ = make_ctx(n_nodes=1, cache_capacity=TEN_INTS)
    calls = {"n": 0}
    rdd = (ctx.parallelize(range(40), 4)
           .map_partitions(counting_factory(calls))
           .persist(MEMORY_AND_DISK))
    assert sorted(rdd.collect()) == list(range(40))
    assert calls["n"] == 4
    assert ctx.metrics["cache_spills"] >= 3
    assert sorted(rdd.collect()) == list(range(40))
    assert calls["n"] == 4                     # reloaded, not recomputed
    assert ctx.metrics["cache_disk_hits"] >= 3


def test_unbounded_default_never_evicts():
    ctx, _ = make_ctx()
    rdd = ctx.parallelize(range(400), 8).cache()
    rdd.collect()
    rdd.collect()
    assert ctx.block_store.stats.evictions == 0
    assert ctx.block_store.stats.hits == 8


def test_unpersist_releases_blocks():
    ctx, _ = make_ctx()
    calls = {"n": 0}
    rdd = (ctx.parallelize(range(20), 2)
           .map_partitions(counting_factory(calls))
           .cache())
    rdd.collect()
    assert calls["n"] == 2
    rdd.unpersist()
    rdd.collect()
    assert calls["n"] == 4                     # recomputed after release


def test_persist_rejects_unknown_level():
    ctx, _ = make_ctx()
    with pytest.raises(SparkLikeError, match="unknown storage level"):
        ctx.parallelize([1], 1).persist("off_heap")


def test_stats_byte_accounting():
    ctx, _ = make_ctx()
    rdd = ctx.parallelize(range(40), 4).cache()
    rdd.collect()
    stats = ctx.block_store.stats
    assert stats.bytes_inserted == 4 * TEN_INTS
    rdd.collect()
    assert stats.hits == 4
    assert stats.bytes_from_cache == 4 * TEN_INTS
