"""DAG analysis: stage cutting, diamond-lineage dedup, fusion chains."""

import pytest

from repro.sparklike import Context, SparkLikeError
from repro.sparklike import dag

from tests.sparklike.test_sparklike import make_ctx


def test_stages_for_linear_chain():
    ctx, _ = make_ctx()
    final = (ctx.parallelize(range(20), 4)
             .map(lambda x: (x % 2, x))
             .reduce_by_key(lambda a, b: a + b)
             .map(lambda kv: (kv[1] % 3, 1))
             .reduce_by_key(lambda a, b: a + b))
    deps = ctx._stages_for(final)
    assert len(deps) == 2
    # Deepest first: the first dep's parent has no shuffle below it.
    assert dag.shuffle_deps(deps[0].parent) == []


def test_stages_for_dedupes_diamond_lineage():
    """Regression: one shuffle reachable through both sides of a union
    must be scheduled exactly once (the eager walk visited it twice)."""
    ctx, _ = make_ctx()
    counts = (ctx.parallelize([(i % 3, 1) for i in range(30)], 4)
              .reduce_by_key(lambda a, b: a + b))
    left = counts.map(lambda kv: ("L", kv[1]))
    right = counts.map(lambda kv: ("R", kv[1]))
    final = left.union(right)
    deps = ctx._stages_for(final)
    assert len(deps) == 1           # the shared dep appears once
    assert deps[0] is counts.shuffle_dep


def test_diamond_runs_shared_stage_once():
    ctx, _ = make_ctx()
    map_runs = {"n": 0}

    def counting(task, records):
        map_runs["n"] += 1
        return records

    counts = (ctx.parallelize([(i % 3, 1) for i in range(30)], 4)
              .map_partitions(counting)
              .reduce_by_key(lambda a, b: a + b))
    merged = (counts.map(lambda kv: ("L", kv[1]))
              .union(counts.map(lambda kv: ("R", kv[1]))))
    out = merged.collect()
    assert len(out) == 6            # 3 keys x 2 sides
    assert map_runs["n"] == 4       # shared map stage ran once
    # 1 shared shuffle-map stage + 1 result stage
    assert ctx.metrics["stages"] == 2


def test_union_concatenates_partitionwise():
    ctx, _ = make_ctx()
    a = ctx.parallelize([1, 2], 2)
    b = ctx.parallelize([3, 4, 5], 3)
    u = a.union(b)
    assert u.n_partitions == 5
    assert sorted(u.collect()) == [1, 2, 3, 4, 5]


def test_union_across_contexts_rejected():
    ctx_a, _ = make_ctx()
    ctx_b, _ = make_ctx()
    with pytest.raises(SparkLikeError, match="union across contexts"):
        ctx_a.parallelize([1], 1).union(ctx_b.parallelize([2], 1))


def test_consumes_shuffle():
    ctx, _ = make_ctx()
    narrow = ctx.parallelize(range(8), 2).map(lambda x: x)
    wide = narrow.map(lambda x: (x, 1)).reduce_by_key(lambda a, b: a + b)
    assert not dag.consumes_shuffle(narrow)
    assert dag.consumes_shuffle(wide)
    assert dag.consumes_shuffle(wide.map(lambda kv: kv))


def test_fused_chain_stops_at_boundaries():
    ctx, _ = make_ctx()
    source = ctx.parallelize(range(8), 2)
    a = source.map(lambda x: x + 1)
    b = a.map(lambda x: x * 2)
    chain = dag.fused_chain(b)
    assert chain == [source, a, b]
    # A persisted interior RDD is a boundary (it must materialise).
    a.cache()
    assert dag.fused_chain(b) == [a, b]


def test_build_stages_shapes():
    ctx, _ = make_ctx()
    final = (ctx.parallelize(range(20), 4)
             .map(lambda x: (x % 2, x))
             .reduce_by_key(lambda a, b: a + b)
             .map(lambda kv: kv))
    stages = dag.build_stages(final)
    assert len(stages) == 2
    assert stages[0].kind == "map"
    assert stages[0].shuffle_dep is not None
    assert stages[1].kind == "reduce"
    assert stages[1].shuffle_dep is None
    assert stages[1].parents == [stages[0].shuffle_dep]
    assert "stage" in stages[0].describe()
