"""Stage fusion: narrow chains run as one per-partition pass."""

import pytest

from tests.sparklike.test_sparklike import make_ctx


def wordcount(ctx):
    words = ["x", "y", "x", "z", "x", "y"] * 50
    return sorted(ctx.parallelize(words, 6)
                  .map(lambda w: (w, 1))
                  .reduce_by_key(lambda a, b: a + b)
                  .collect())


def chain(ctx, k=4):
    rdd = ctx.parallelize(range(500), 8)
    for _ in range(k):
        rdd = rdd.map(lambda x: x + 1)
    return sorted(rdd.collect())


def test_fusion_preserves_results():
    plain, _ = make_ctx()
    fused, _ = make_ctx(fusion=True)
    assert chain(plain) == chain(fused)
    assert wordcount(plain) == wordcount(fused)


def test_fusion_cuts_narrow_chain_compute():
    """k fused maps charge (1 + (k-1)*share) * c * n instead of k*c*n."""
    k, share = 4, 0.5

    def elapsed(**kw):
        ctx, _ = make_ctx(record_cost=1e-3, **kw)
        t0 = ctx.env.now
        chain(ctx, k=k)
        return ctx.env.now - t0, ctx

    plain_t, _ = elapsed()
    fused_t, _ = elapsed(fusion=True)
    assert fused_t < plain_t
    # Compute dominates at this record cost; check the predicted ratio
    # loosely (startup/transfer overheads shift it a little).
    predicted = (1 + (k - 1) * share) / k
    assert fused_t / plain_t == pytest.approx(predicted, rel=0.15)


def test_single_op_chain_unchanged_by_fusion():
    """A chain of one operator has no interior: fusion must not change
    its timing at all."""
    def elapsed(**kw):
        ctx, _ = make_ctx(**kw)
        t0 = ctx.env.now
        ctx.parallelize(range(200), 8).map(lambda x: x).collect()
        return ctx.env.now - t0

    assert elapsed(fusion=True) == pytest.approx(elapsed(), abs=1e-9)


def test_fusion_respects_cache_boundary():
    """A persisted interior RDD materialises: ops below it fuse
    separately from ops above, and the cached records are reusable."""
    ctx, _ = make_ctx(fusion=True)
    seen = {"n": 0}

    def counting(task, records):
        seen["n"] += 1
        return records

    base = (ctx.parallelize(range(40), 4)
            .map_partitions(counting)
            .cache())
    derived = base.map(lambda x: x + 1).map(lambda x: x * 2)
    first = sorted(derived.collect())
    second = sorted(derived.collect())
    assert first == second == sorted((x + 1) * 2 for x in range(40))
    assert seen["n"] == 4           # base computed once per partition
    assert ctx.metrics["cache_hits"] >= 4


def test_fusion_with_shuffle_boundary():
    ctx, _ = make_ctx(fusion=True)
    out = (ctx.parallelize(range(40), 4)
           .map(lambda x: x + 1)
           .map(lambda x: (x % 4, x))
           .reduce_by_key(lambda a, b: a + b)
           .map(lambda kv: (kv[0], kv[1] * 10))
           .collect())
    expect = {}
    for x in range(40):
        expect[(x + 1) % 4] = expect.get((x + 1) % 4, 0) + (x + 1)
    assert dict(out) == {k: v * 10 for k, v in expect.items()}
