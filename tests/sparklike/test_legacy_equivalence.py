"""Twin-world guard-rail: the lazy DAG engine at default knobs must
reproduce the frozen v1 eager engine — identical results AND identical
simulated timings at 1e-9, action by action.

Two independent but identically-seeded worlds run the same workload,
one on :class:`repro.sparklike._legacy.LegacyContext`, one on the v2
:class:`repro.sparklike.Context` with every new knob at its default
(fusion off, unbounded cache, all-at-once shuffle fetch). Any drift in
the default event shape — an extra process hop, a reordered transfer, a
changed charge — shows up here as a timing mismatch.
"""

import io

import numpy as np
import pytest

from repro.sparklike import Context
from repro.sparklike._legacy import LegacyContext

from tests.mapreduce.conftest import small_spec

TOL = 1e-9


def build_world(engine, with_scidp=False, seed_files=()):
    from repro.cluster import Cluster
    from repro.hdfs import HDFS
    from repro.sim import Environment

    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(4)]
    hdfs = HDFS(env, cluster.network, block_size=200, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    for path, payload in seed_files:
        hdfs.store_file_sync(path, payload)
    scidp = None
    if with_scidp:
        from repro.core import SciDP
        from repro.pfs import PFS, StripeLayout
        mds = cluster.add_node("mds", small_spec(), role="storage")
        oss = cluster.add_node("oss", small_spec(), role="storage")
        pfs = PFS(env, cluster.network, mds, [oss],
                  default_layout=StripeLayout(stripe_size=512,
                                              stripe_count=1))
        scidp = SciDP(env, nodes, pfs, hdfs, cluster.network)
        seed_nc(scidp)
    return engine(env, nodes, hdfs, cluster.network, scidp=scidp)


def seed_nc(scidp):
    from repro.formats import Dataset, scinc
    ds = Dataset()
    rng = np.random.default_rng(5)
    for name in ("QR", "T"):
        ds.create_variable(name, ("z", "y", "x"),
                           rng.random((4, 8, 8)).astype(np.float32),
                           chunk_shape=(1, 8, 8))
    buf = io.BytesIO()
    scinc.write(buf, ds)
    scidp.pfs.store_file("/sim/plot_18_00_00.nc", buf.getvalue())


def run_twins(workload, **world_kw):
    """Run ``workload(ctx) -> [result, ...]`` on both engines; each
    returned action result is compared, and so is every inter-action
    timestamp."""
    legacy = build_world(LegacyContext, **world_kw)
    lazy = build_world(Context, **world_kw)
    legacy_marks, legacy_out = [], []
    lazy_marks, lazy_out = [], []
    for ctx, marks, out in ((legacy, legacy_marks, legacy_out),
                            (lazy, lazy_marks, lazy_out)):
        for result in workload(ctx):
            marks.append(ctx.env.now)
            out.append(result)
    assert legacy_out == lazy_out
    assert len(legacy_marks) == len(lazy_marks)
    for expected, got in zip(legacy_marks, lazy_marks):
        assert got == pytest.approx(expected, abs=TOL)
    return legacy, lazy


def test_map_filter_collect():
    def workload(ctx):
        yield sorted(ctx.parallelize(range(200), 8)
                     .map(lambda x: x * 3)
                     .filter(lambda x: x % 2 == 0)
                     .collect())

    run_twins(workload)


def test_wordcount_shuffle():
    def workload(ctx):
        words = ["x", "y", "x", "z", "x", "y"] * 25
        yield sorted(ctx.parallelize(words, 6)
                     .map(lambda w: (w, 1))
                     .reduce_by_key(lambda a, b: a + b)
                     .collect())

    legacy, lazy = run_twins(workload)
    assert legacy.metrics["stages"] == lazy.metrics["stages"]
    assert legacy.metrics["tasks"] == lazy.metrics["tasks"]


def test_chained_shuffles():
    def workload(ctx):
        yield sorted(ctx.parallelize(range(80), 4)
                     .map(lambda x: (x % 8, x))
                     .reduce_by_key(lambda a, b: a + b)
                     .map(lambda kv: (kv[0] % 2, kv[1]))
                     .reduce_by_key(lambda a, b: a + b)
                     .collect())

    run_twins(workload)


def test_group_by_key_then_map_values():
    def workload(ctx):
        pairs = [(i % 5, i) for i in range(60)]
        yield sorted(ctx.parallelize(pairs, 6)
                     .group_by_key()
                     .map_values(sum)
                     .collect())

    run_twins(workload)


def test_text_file_pipeline():
    def workload(ctx):
        rdd = ctx.text_file("/logs")
        yield len(rdd.collect())
        yield sorted(rdd.map(lambda line: (line, 1))
                     .reduce_by_key(lambda a, b: a + b)
                     .collect())

    run_twins(workload,
              seed_files=[("/logs/a.txt", b"alpha\nbeta\n" * 40),
                          ("/logs/b.txt", b"gamma\n" * 30)])


def test_cached_iterative():
    def workload(ctx):
        base = ctx.parallelize(range(120), 8).map(lambda x: x + 1).cache()
        yield base.count()
        yield base.count()        # warm: served from the cache tier
        yield sorted(base.map(lambda x: (x % 4, x))
                     .reduce_by_key(lambda a, b: a + b)
                     .collect())

    legacy, lazy = run_twins(workload)
    assert legacy.metrics["cache_hits"] == lazy.metrics["cache_hits"]


def test_shuffle_output_reuse_across_actions():
    def workload(ctx):
        counts = (ctx.parallelize([(i % 3, 1) for i in range(90)], 6)
                  .reduce_by_key(lambda a, b: a + b))
        yield sorted(counts.collect())
        # Second action over the same shuffle: map stage is skipped.
        yield sorted(counts.map_values(lambda v: v * 2).collect())

    legacy, lazy = run_twins(workload)
    assert legacy.metrics["stages"] == lazy.metrics["stages"]


def test_count_and_reduce():
    def workload(ctx):
        rdd = ctx.parallelize(range(37), 5)
        yield rdd.count()
        yield rdd.reduce(lambda a, b: a + b)

    run_twins(workload)


def test_scidp_source():
    def workload(ctx):
        rdd = ctx.scidp_variable("/sim", variables=["QR"])
        yield sorted(
            (key, float(np.asarray(arr).sum()))
            for key, arr in rdd.collect())

    run_twins(workload, with_scidp=True)


def test_scidp_shuffle_maxima():
    def workload(ctx):
        yield sorted(
            ctx.scidp_variable("/sim", variables=["T"])
            .map(lambda kv: (kv[0][2][0], float(np.asarray(kv[1]).max())))
            .reduce_by_key(max)
            .collect())

    run_twins(workload, with_scidp=True)
