"""The engine rides repro.obs: job/stage/task spans, counters, latency
histograms — so ``repro.obs report`` and ``critpath`` work on a
sparklike run."""

import pytest

from repro.obs import (
    critical_path,
    load_trace,
    metrics_of,
    spans_from_trace,
)
from repro.obs.report import report_data

from tests.sparklike.test_sparklike import make_ctx


def run_workload(tmp_path, cached=False):
    from repro.obs import TraceSession
    ctx, _hdfs = make_ctx()
    path = str(tmp_path / "sparklike.trace.json")
    session = TraceSession(path)
    session.observe(ctx.env, "sparklike", nodes=ctx.nodes,
                    network=ctx.network)
    base = ctx.parallelize([(i % 5, 1) for i in range(100)], 8)
    if cached:
        base = base.cache()
        base.count()
    (base.reduce_by_key(lambda a, b: a + b).collect())
    session.save()
    return ctx, path


def test_spans_and_critical_path(tmp_path):
    _ctx, path = run_workload(tmp_path)
    spans = spans_from_trace(load_trace(path), run="sparklike")
    cats = {s.cat for s in spans}
    assert "job" in cats
    assert "stage" in cats
    assert "task.map" in cats and "task.reduce" in cats
    assert "task.phase" in cats
    path_result = critical_path(spans)
    assert path_result.total > 0
    assert path_result.device_buckets()


def test_report_tables(tmp_path):
    _ctx, path = run_workload(tmp_path)
    data = report_data(path)
    assert [run["name"] for run in data["runs"]] == ["sparklike"]
    assert data["tables"]


def test_counters_and_latencies(tmp_path):
    ctx, _path = run_workload(tmp_path, cached=True)
    registry = metrics_of(ctx.env)
    assert registry.counter("sparklike.stages").value >= 2
    assert registry.counter("sparklike.tasks").value >= 16
    names = [row["hist"] for row in registry.latency_rows()]
    assert "sparklike.task.duration" in names
    assert "sparklike.stage.duration" in names
    cache_rows = registry.cache_rows()
    assert any("sparklike.cache" in row["device"] for row in cache_rows)


def test_untraced_run_pays_nothing(tmp_path):
    """Without a session, the engine must not create tracer state."""
    ctx, _ = make_ctx()
    ctx.parallelize(range(20), 4).collect()
    assert metrics_of(ctx.env) is None
