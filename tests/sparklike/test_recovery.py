"""Lineage-based recovery: lose an executor mid-stage and recompute only
the lost partitions, reusing cached ancestors on surviving nodes."""

import pytest

from repro.sparklike import Context, SparkLikeError

from tests.sparklike.test_sparklike import make_ctx


def kill_at(ctx, name, delay):
    """Schedule an executor loss ``delay`` simulated seconds from now."""
    def killer():
        yield ctx.env.timeout(delay)
        ctx.fail_node(name)
    ctx.env.process(killer())


def make_counting(calls, seconds=1.0):
    def counting(task, records):
        calls[task.index] = calls.get(task.index, 0) + 1
        task.charge(seconds, "compute")
        return records
    return counting


def test_only_lost_partitions_recompute():
    ctx, _ = make_ctx(executor_cores=1)
    base_calls = {}
    base = (ctx.parallelize(range(80), 8)
            .map_partitions(make_counting(base_calls))
            .cache())
    base.collect()
    assert all(n == 1 for n in base_calls.values())
    # Which partitions did n2 cache? Those are the ones a kill loses.
    lost = {key[1] for key, entry in ctx.block_store._entries.items()
            if entry[0].name == "n2"}
    assert lost                       # n2 cached at least one partition

    derived_calls = {}
    derived = base.map_partitions(make_counting(derived_calls))
    kill_at(ctx, "n2", 0.5)           # mid-first-wave of the next stage
    out = sorted(derived.collect())
    assert out == list(range(80))

    # Cached ancestors on surviving nodes were reused; only the blocks
    # that lived on n2 were recomputed.
    for index in range(8):
        expect = 2 if index in lost else 1
        assert base_calls[index] == expect, (index, base_calls)
    assert ctx.metrics["executors_lost"] == 1
    assert ctx.metrics["tasks_retried"] >= 1


def test_retry_recorded_in_history_and_counters():
    ctx, _ = make_ctx(executor_cores=1)
    base = (ctx.parallelize(range(80), 8)
            .map_partitions(make_counting({}))
            .cache())
    base.collect()
    kill_at(ctx, "n2", 0.5)
    base.map_partitions(make_counting({})).collect()

    history = ctx.last_history
    killed = [a for a in history.attempts if a.outcome == "killed"]
    assert len(killed) == 1
    assert killed[0].error == "executor lost"
    assert killed[0].node == "n2"
    # The same partition succeeded on a later attempt, elsewhere.
    retried = [a for a in history.attempts
               if a.split == killed[0].split and a.outcome == "succeeded"]
    assert retried
    assert all(a.node != "n2" for a in retried)
    assert ctx.metrics["tasks_retried"] == 1


def test_lost_map_outputs_regenerate_transitively():
    """A node loss during the reduce stage invalidates its map outputs;
    the next wave re-runs exactly the missing map partitions (reusing
    cached ancestors) before the remaining reduce tasks retry."""
    ctx, _ = make_ctx(executor_cores=1)
    base_calls = {}
    base = (ctx.parallelize([(i % 8, 1) for i in range(160)], 8)
            .map_partitions(make_counting(base_calls, seconds=0.2))
            .cache())
    reduced = (base.reduce_by_key(lambda a, b: a + b)
               .map_partitions(make_counting({}, seconds=1.0)))
    # Map wave takes ~0.2s x 2 rounds; reduce tasks charge 1.0s. Kill
    # n2 while the first reduce wave is running.
    kill_at(ctx, "n2", 1.0)
    out = dict(reduced.collect())
    assert out == {k: 20 for k in range(8)}
    assert ctx.metrics["executors_lost"] == 1
    # Map partitions whose output OR cache lived on n2 ran again; the
    # rest were served from cache (at most one compute + one recompute).
    assert all(n <= 2 for n in base_calls.values())
    assert any(n == 2 for n in base_calls.values())
    assert all(n == 1 for i, n in base_calls.items()
               if i not in _lost_indices(ctx))
    # At least one retry wave ran.
    assert ctx.metrics.get("retry_waves", 0) >= 1


def _lost_indices(ctx):
    """Partition indices whose first compute happened on the dead node
    (attempt records in the histories)."""
    lost = set()
    for history in ctx.histories:
        for attempt in history.attempts:
            if attempt.node in ctx.lost_nodes and attempt.kind == "map":
                lost.add(int(attempt.split.rsplit("#", 1)[1]))
    return lost


def test_fail_unknown_node_rejected():
    ctx, _ = make_ctx()
    with pytest.raises(SparkLikeError, match="unknown node"):
        ctx.fail_node("n99")


def test_fail_node_idempotent():
    ctx, _ = make_ctx()
    ctx.parallelize(range(8), 2).collect()
    ctx.fail_node("n3")
    ctx.fail_node("n3")
    assert ctx.metrics["executors_lost"] == 1


def test_all_executors_lost_raises():
    ctx, _ = make_ctx(n_nodes=2)
    for name in ("n0", "n1"):
        ctx.fail_node(name)
    with pytest.raises(SparkLikeError, match="all executors lost"):
        ctx.parallelize(range(8), 2).collect()


def test_survivors_finish_without_retry_noise():
    """Killing an idle node between actions must not retry anything."""
    ctx, _ = make_ctx()
    rdd = ctx.parallelize(range(40), 4)
    assert sorted(rdd.collect()) == list(range(40))
    ctx.fail_node("n3")
    assert sorted(rdd.collect()) == list(range(40))
    assert "tasks_retried" not in ctx.metrics
