"""Tests for the Spark-like engine and its SciDP source."""

import numpy as np
import pytest

from repro.sparklike import Context, SparkLikeError

from tests.mapreduce.conftest import small_spec


def make_ctx(n_nodes=4, with_scidp=False, **ctx_kw):
    from repro.cluster import Cluster
    from repro.hdfs import HDFS
    from repro.sim import Environment

    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(n_nodes)]
    hdfs = HDFS(env, cluster.network, block_size=200, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    scidp = None
    if with_scidp:
        from repro.core import SciDP
        from repro.pfs import PFS, StripeLayout
        mds = cluster.add_node("mds", small_spec(), role="storage")
        oss = cluster.add_node("oss", small_spec(), role="storage")
        pfs = PFS(env, cluster.network, mds, [oss],
                  default_layout=StripeLayout(stripe_size=512,
                                              stripe_count=1))
        scidp = SciDP(env, nodes, pfs, hdfs, cluster.network)
    ctx = Context(env, nodes, hdfs, cluster.network, scidp=scidp,
                  **ctx_kw)
    return ctx, hdfs


# --------------------------------------------------------------- basics
def test_parallelize_collect_roundtrip():
    ctx, _ = make_ctx()
    data = list(range(100))
    assert sorted(ctx.parallelize(data, 8).collect()) == data


def test_map_filter_pipeline():
    ctx, _ = make_ctx()
    out = (ctx.parallelize(range(20), 4)
           .map(lambda x: x * 2)
           .filter(lambda x: x % 3 == 0)
           .collect())
    assert sorted(out) == [x * 2 for x in range(20) if (x * 2) % 3 == 0]


def test_flat_map_and_key_by():
    ctx, _ = make_ctx()
    out = (ctx.parallelize(["a b", "b c"], 2)
           .flat_map(lambda line: line.split())
           .key_by(lambda w: w)
           .collect())
    assert sorted(out) == [("a", "a"), ("b", "b"), ("b", "b"), ("c", "c")]


def test_count_and_take():
    ctx, _ = make_ctx()
    rdd = ctx.parallelize(range(37), 5)
    assert rdd.count() == 37
    assert len(rdd.take(5)) == 5
    with pytest.raises(SparkLikeError):
        rdd.take(-1)


def test_reduce():
    ctx, _ = make_ctx()
    assert ctx.parallelize(range(10), 3).reduce(
        lambda a, b: a + b) == 45


def test_reduce_empty_raises():
    ctx, _ = make_ctx()
    with pytest.raises(SparkLikeError):
        ctx.parallelize([], 2).reduce(lambda a, b: a + b)


# -------------------------------------------------------------- shuffles
def test_reduce_by_key_wordcount():
    ctx, _ = make_ctx()
    words = ["x", "y", "x", "z", "x", "y"] * 10
    out = dict(
        ctx.parallelize(words, 6)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect())
    assert out == {"x": 30, "y": 20, "z": 10}


def test_group_by_key():
    ctx, _ = make_ctx()
    pairs = [("a", 1), ("b", 2), ("a", 3)]
    out = dict(ctx.parallelize(pairs, 2).group_by_key().collect())
    assert sorted(out["a"]) == [1, 3]
    assert out["b"] == [2]


def test_chained_shuffles_run_multiple_stages():
    ctx, _ = make_ctx()
    out = (ctx.parallelize(range(40), 4)
           .map(lambda x: (x % 4, x))
           .reduce_by_key(lambda a, b: a + b)          # stage boundary 1
           .map(lambda kv: (kv[0] % 2, kv[1]))
           .reduce_by_key(lambda a, b: a + b)          # stage boundary 2
           .collect())
    expect = {0: sum(x for x in range(40) if x % 4 in (0, 2)),
              1: sum(x for x in range(40) if x % 4 in (1, 3))}
    assert dict(out) == expect
    assert ctx.metrics["stages"] >= 3


def test_map_values_after_shuffle():
    ctx, _ = make_ctx()
    out = dict(
        ctx.parallelize([("k", 1), ("k", 2)], 2)
        .group_by_key()
        .map_values(sum)
        .collect())
    assert out == {"k": 3}


# ------------------------------------------------------------- text files
def test_text_file_source_with_locality():
    ctx, hdfs = make_ctx()
    hdfs.store_file_sync("/logs/a.txt", b"alpha\nbeta\n" * 40)
    rdd = ctx.text_file("/logs")
    lines = rdd.collect()
    assert len(lines) == 80
    counts = dict(
        rdd.map(lambda line: (line, 1))
        .reduce_by_key(lambda a, b: a + b).collect())
    assert counts == {b"alpha": 40, b"beta": 40}


def test_text_file_missing_raises():
    ctx, _ = make_ctx()
    with pytest.raises(Exception):
        ctx.text_file("/nope")


# ---------------------------------------------------------------- timing
def test_actions_advance_simulated_time():
    ctx, _ = make_ctx()
    t0 = ctx.env.now
    ctx.parallelize(range(50), 8).map(lambda x: x).collect()
    assert ctx.env.now > t0


def test_more_executors_run_faster():
    def elapsed(n_nodes):
        ctx, _ = make_ctx(n_nodes=n_nodes, executor_cores=2,
                          task_startup=0.05)
        t0 = ctx.env.now
        (ctx.parallelize(range(64), 32)
         .map_partitions(lambda task, recs:
                         (task.charge(0.5), recs)[1])
         .collect())
        return ctx.env.now - t0

    assert elapsed(8) < elapsed(2)


def test_task_charge_validation():
    ctx, _ = make_ctx()
    with pytest.raises(SparkLikeError):
        (ctx.parallelize([1], 1)
         .map_partitions(lambda task, recs:
                         (task.charge(-1), recs)[1])
         .collect())


# -------------------------------------------------------------- SciDP RDD
def seed_scidp(ctx_tuple):
    import io
    from repro.formats import Dataset, scinc
    ctx, _hdfs = ctx_tuple
    ds = Dataset()
    rng = np.random.default_rng(5)
    for name in ("QR", "T"):
        ds.create_variable(name, ("z", "y", "x"),
                           rng.random((4, 8, 8)).astype(np.float32),
                           chunk_shape=(1, 8, 8))
    buf = io.BytesIO()
    scinc.write(buf, ds)
    ctx.scidp.pfs.store_file("/sim/plot_18_00_00.nc", buf.getvalue())
    return ds


def test_scidp_rdd_reads_pfs_directly():
    ctx, hdfs = make_ctx(with_scidp=True)
    ds = seed_scidp((ctx, hdfs))
    rdd = ctx.scidp_variable("/sim", variables=["QR"])
    assert rdd.n_partitions == 4  # one per chunk/level
    records = rdd.collect()
    total = sum(float(arr.sum()) for _key, arr in records)
    assert total == pytest.approx(
        float(ds.variables["QR"].data.astype(np.float64).sum()), rel=1e-6)


def test_scidp_rdd_level_maxima_via_shuffle():
    ctx, hdfs = make_ctx(with_scidp=True)
    ds = seed_scidp((ctx, hdfs))
    out = dict(
        ctx.scidp_variable("/sim", variables=["T"])
        .map(lambda kv: (kv[0][2][0], float(np.asarray(kv[1]).max())))
        .reduce_by_key(max)
        .collect())
    for z in range(4):
        assert out[z] == pytest.approx(
            float(ds.variables["T"].data[z].max()))


def test_scidp_rdd_requires_runtime():
    ctx, _ = make_ctx(with_scidp=False)
    with pytest.raises(SparkLikeError, match="no SciDP runtime"):
        ctx.scidp_variable("/sim")


def test_scidp_rdd_missing_input():
    ctx, _ = make_ctx(with_scidp=True)
    with pytest.raises(SparkLikeError, match="no scientific input"):
        ctx.scidp_variable("/empty")


# --------------------------------------------------------------- caching
def test_cache_avoids_recompute():
    ctx, _ = make_ctx()
    calls = {"n": 0}

    def counting(task, records):
        calls["n"] += len(records)
        return records

    rdd = (ctx.parallelize(range(40), 4)
           .map_partitions(counting)
           .cache())
    first = sorted(rdd.collect())
    n_after_first = calls["n"]
    second = sorted(rdd.collect())
    assert first == second == list(range(40))
    assert calls["n"] == n_after_first          # no recompute
    assert ctx.metrics.get("cache_hits", 0) >= 4


def test_cache_shortcircuits_lineage_below():
    ctx, _ = make_ctx()
    source_reads = {"n": 0}

    def tracer(task, records):
        source_reads["n"] += 1
        return records

    base = ctx.parallelize(range(20), 2).map_partitions(tracer).cache()
    derived_a = base.map(lambda x: x + 1)
    derived_b = base.map(lambda x: x * 2)
    assert sorted(derived_a.collect()) == [x + 1 for x in range(20)]
    assert sorted(derived_b.collect()) == sorted(x * 2 for x in range(20))
    assert source_reads["n"] == 2  # computed once per partition, total


def test_uncached_rdd_recomputes():
    ctx, _ = make_ctx()
    calls = {"n": 0}

    def counting(task, records):
        calls["n"] += 1
        return records

    rdd = ctx.parallelize(range(8), 2).map_partitions(counting)
    rdd.collect()
    rdd.collect()
    assert calls["n"] == 4  # 2 partitions x 2 actions


def test_cached_scidp_rdd_second_action_cheaper():
    ctx, hdfs = make_ctx(with_scidp=True)
    seed_scidp((ctx, hdfs))
    rdd = ctx.scidp_variable("/sim", variables=["QR"]).cache()
    t0 = ctx.env.now
    rdd.count()
    cold = ctx.env.now - t0
    t1 = ctx.env.now
    rdd.count()
    warm = ctx.env.now - t1
    assert warm < cold  # no PFS reads the second time
