"""Differential testing: Spark-like pipelines vs plain-Python references
on random inputs."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.sparklike.test_sparklike import make_ctx


@given(st.lists(st.sampled_from("abcdef"), max_size=80),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=25, deadline=None)
def test_wordcount_matches_counter(words, n_partitions):
    ctx, _ = make_ctx(n_nodes=3)
    out = dict(
        ctx.parallelize(words, n_partitions)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect())
    assert out == dict(Counter(words))


@given(st.lists(st.integers(min_value=-100, max_value=100), max_size=60),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None)
def test_map_filter_matches_comprehension(values, n_partitions):
    ctx, _ = make_ctx(n_nodes=2)
    out = (ctx.parallelize(values, n_partitions)
           .map(lambda v: v * 3 - 1)
           .filter(lambda v: v % 2 == 0)
           .collect())
    assert sorted(out) == sorted(
        v * 3 - 1 for v in values if (v * 3 - 1) % 2 == 0)


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                max_size=60))
@settings(max_examples=25, deadline=None)
def test_reduce_matches_builtin(values):
    ctx, _ = make_ctx(n_nodes=2)
    got = ctx.parallelize(values, 4).reduce(lambda a, b: a + b)
    assert got == sum(values)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=4),
                          st.integers()), max_size=50))
@settings(max_examples=25, deadline=None)
def test_group_by_key_matches_reference(pairs):
    ctx, _ = make_ctx(n_nodes=2)
    out = {k: sorted(v) for k, v in
           ctx.parallelize(pairs, 3).group_by_key().collect()}
    expect: dict = {}
    for k, v in pairs:
        expect.setdefault(k, []).append(v)
    assert out == {k: sorted(v) for k, v in expect.items()}
