"""``take(n)`` evaluates partitions incrementally (satellite fix: the
eager engine ran the whole job and sliced the result)."""

import pytest

from repro.sparklike import SparkLikeError

from tests.sparklike.test_sparklike import make_ctx


def counting_factory(calls):
    def counting(task, records):
        calls.add(task.index)
        return records
    return counting


def test_take_runs_only_needed_partitions():
    ctx, _ = make_ctx()
    computed = set()
    rdd = (ctx.parallelize(range(100), 10)
           .map_partitions(counting_factory(computed)))
    assert rdd.take(5) == [0, 1, 2, 3, 4]
    assert computed == {0}          # 10 records/partition: one is enough


def test_take_grows_batches_until_satisfied():
    ctx, _ = make_ctx()
    computed = set()
    rdd = (ctx.parallelize(range(100), 10)
           .map_partitions(counting_factory(computed)))
    out = rdd.take(25)
    assert out == list(range(25))
    # partition 0 (10 records) is short, so the 4x batch 1..4 follows.
    assert computed == {0, 1, 2, 3, 4}


def test_take_zero_and_overshoot():
    ctx, _ = make_ctx()
    rdd = ctx.parallelize(range(7), 3)
    assert rdd.take(0) == []
    assert rdd.take(100) == list(range(7))


def test_take_negative_raises():
    ctx, _ = make_ctx()
    with pytest.raises(SparkLikeError):
        ctx.parallelize(range(7), 3).take(-1)


def test_take_cheaper_than_collect():
    def elapsed(action):
        ctx, _ = make_ctx()
        rdd = ctx.parallelize(range(400), 16).map(lambda x: x)
        t0 = ctx.env.now
        action(rdd)
        return ctx.env.now - t0

    assert (elapsed(lambda rdd: rdd.take(3))
            < elapsed(lambda rdd: rdd.collect()))


def test_take_after_shuffle():
    ctx, _ = make_ctx()
    out = (ctx.parallelize([(i % 4, 1) for i in range(40)], 4)
           .reduce_by_key(lambda a, b: a + b)
           .take(2))
    assert len(out) == 2
    assert all(v == 10 for _k, v in out)


def test_first():
    ctx, _ = make_ctx()
    assert ctx.parallelize(range(5), 5).first() == 0
    with pytest.raises(SparkLikeError, match="empty"):
        ctx.parallelize([], 2).first()
