"""Tests for the calibration/scaling module."""

import pytest

from repro import costs


@pytest.fixture(autouse=True)
def _restore():
    yield
    costs.reset_scale()


def test_default_scale_is_one():
    costs.reset_scale()
    assert costs.get_scale() == 1.0


def test_set_scale_divides_all_rates():
    base = {name: getattr(costs, name) for name in costs._RATE_NAMES}
    costs.set_scale(10.0)
    for name in costs._RATE_NAMES:
        assert getattr(costs, name) == pytest.approx(base[name] / 10.0)
    assert costs.get_scale() == 10.0


def test_set_scale_is_idempotent_from_base():
    """Scaling twice must not compound — rates derive from base values."""
    costs.set_scale(10.0)
    ten = costs.TEXT_PARSE_BYTES_PER_SEC
    costs.set_scale(10.0)
    assert costs.TEXT_PARSE_BYTES_PER_SEC == ten
    costs.set_scale(5.0)
    assert costs.TEXT_PARSE_BYTES_PER_SEC == pytest.approx(ten * 2)


def test_reset_scale_restores():
    original = costs.DECOMPRESS_BYTES_PER_SEC
    costs.set_scale(100.0)
    costs.reset_scale()
    assert costs.DECOMPRESS_BYTES_PER_SEC == original


def test_invalid_scale_rejected():
    with pytest.raises(ValueError):
        costs.set_scale(0)
    with pytest.raises(ValueError):
        costs.set_scale(-3)


def test_latency_constants_not_scaled():
    before = costs.PFS_REQUEST_OVERHEAD
    costs.set_scale(50.0)
    assert costs.PFS_REQUEST_OVERHEAD == before
    assert costs.HADOOP_STREAM_READ_BYTES == 64 * 1024
