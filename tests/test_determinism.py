"""Determinism: identical configurations produce identical simulations.

The discrete-event engine breaks ties by insertion order, data
generation is seeded, and nothing consults wall-clock or hash order —
so two runs of an experiment agree to the last digit, which is what
makes results in EXPERIMENTS.md reproducible.
"""

import pytest

from repro import costs
from repro.workloads.solutions import build_world, run_solution


@pytest.fixture(autouse=True)
def _reset():
    yield
    costs.reset_scale()


def one_run(solution):
    world = build_world(n_timesteps=2, shape=(4, 24, 24))
    result = run_solution(world, solution)
    costs.reset_scale()
    return result


def test_scidp_run_is_bit_deterministic():
    a = one_run("scidp")
    b = one_run("scidp")
    assert a.total_time == b.total_time
    assert a.phase_means == b.phase_means
    assert a.counters == b.counters


def test_baseline_run_is_bit_deterministic():
    a = one_run("scihadoop")
    b = one_run("scihadoop")
    assert a.total_time == b.total_time
    assert a.copy_time == b.copy_time


def test_generated_files_identical_across_worlds():
    w1 = build_world(n_timesteps=1, shape=(2, 16, 16), with_text=False)
    bytes1 = w1.pfs.read_file_sync(w1.manifest["files"][0])
    costs.reset_scale()
    w2 = build_world(n_timesteps=1, shape=(2, 16, 16), with_text=False)
    bytes2 = w2.pfs.read_file_sync(w2.manifest["files"][0])
    assert bytes1 == bytes2
