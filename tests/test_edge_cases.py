"""Edge-case coverage across modules: validation paths, small helpers,
and behaviours no scenario test exercises directly."""

import numpy as np
import pytest

from repro.cluster import Cluster, Network, Node, NodeSpec
from repro.hdfs.block import VirtualBlock
from repro.mapreduce import Counters
from repro.mapreduce.runtime import JobResult
from repro.mapreduce.task import TaskContext, TaskStats
from repro.sim import Environment


# ----------------------------------------------------------------- cluster
def test_node_compute_rejects_negative():
    env = Environment()
    node = Node(env, "n")
    with pytest.raises(ValueError):
        node.compute(-1)


def test_network_transfer_rejects_negative():
    env = Environment()
    net = Network(env)
    a, b = Node(env, "a"), Node(env, "b")
    with pytest.raises(ValueError):
        net.transfer(a, b, -5)


def test_zero_byte_network_transfer_instant():
    env = Environment()
    net = Network(env)
    a, b = Node(env, "a"), Node(env, "b")
    done = []

    def proc():
        yield net.transfer(a, b, 0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]
    assert net.bytes_moved == 0


def test_cluster_getitem_and_len():
    env = Environment()
    c = Cluster(env)
    node = c.add_node("x")
    assert c["x"] is node
    assert len(c) == 1


# -------------------------------------------------------------- hdfs block
def test_virtual_block_validation():
    with pytest.raises(ValueError):
        VirtualBlock(source_path="/f", offset=-1, length=5)
    with pytest.raises(ValueError):
        VirtualBlock(source_path="/f", offset=0, length=-5)
    vb = VirtualBlock(source_path="/f", offset=0, length=5)
    assert vb.hyperslab is None


# ---------------------------------------------------------------- counters
def test_counters_merge_and_groups():
    a = Counters()
    a.increment("io", "bytes", 5)
    b = Counters()
    b.increment("io", "bytes", 7)
    b.increment("map", "records", 1)
    a.merge(b)
    assert a.value("io", "bytes") == 12
    assert a.group("io") == {"bytes": 12}
    assert a.group("missing") == {}
    assert a.as_dict() == {"io": {"bytes": 12}, "map": {"records": 1}}
    assert a.value("nope", "nothing") == 0


# --------------------------------------------------------------- job result
def test_job_result_helpers():
    result = JobResult(name="j", start=1.0, end=5.0, counters=Counters())
    assert result.duration == 4.0
    result.task_stats = [
        TaskStats("m1", "map", "n0", 0, 2, {"read": 1.0, "plot": 0.5}),
        TaskStats("m2", "map", "n1", 0, 4, {"read": 3.0}),
        TaskStats("r1", "reduce", "n0", 4, 5, {"write": 0.2}),
    ]
    assert len(result.stats_for("map")) == 2
    means = result.phase_means("map")
    assert means["read"] == pytest.approx(2.0)
    assert means["plot"] == pytest.approx(0.25)
    assert result.phase_means("shuffle-only") == {}
    assert result.task_stats[0].duration == 2


# ------------------------------------------------------------ task context
def test_task_context_charge_validation():
    env = Environment()
    node = Node(env, "n")
    from repro.mapreduce import JobConf, TextInputFormat
    job = JobConf(name="j", mapper=lambda *a: None,
                  input_format=TextInputFormat(), input_paths=["/x"])
    ctx = TaskContext(env, node, job, "t1")
    with pytest.raises(ValueError):
        ctx.charge(-1)
    with pytest.raises(ValueError):
        ctx.defer_io("append", "/x", b"")
    ctx.emit("k", 1)
    assert ctx.take_output() == [("k", 1)]
    assert ctx.take_output() == []


# --------------------------------------------------------------- explorer
def test_explorer_without_io_charges_is_instant():
    import io
    from repro.core import FileExplorer
    from repro.formats import Dataset, scinc
    from repro.pfs import PFS, PFSClient

    env = Environment()
    cluster = Cluster(env)
    c0 = cluster.add_node("c0")
    oss = cluster.add_node("oss", NodeSpec())
    pfs = PFS(env, cluster.network, oss, [oss])
    ds = Dataset()
    ds.create_variable("v", ("x",), np.zeros(4, dtype=np.float32))
    buf = io.BytesIO()
    scinc.write(buf, ds)
    pfs.store_file("/d/a.nc", buf.getvalue())

    explorer = FileExplorer(PFSClient(pfs, c0))
    proc = env.process(explorer.explore("/d", charge_io=False))
    env.run()
    explored = proc.value
    # Only the listdir metadata RPC was charged.
    assert env.now == pytest.approx(0.0005)
    assert explored[0].format == "scinc"


# ----------------------------------------------------------------- costs
def test_estimate_csv_size_zero():
    from repro.formats.text import estimate_csv_size
    assert estimate_csv_size(0) == 0


def test_parse_csv_fast_empty_and_headerless():
    from repro.formats.text import parse_csv_fast
    assert parse_csv_fast(b"") == {}
    assert parse_csv_fast(b"#vars:QR\n") == {}
    out = parse_csv_fast(b"0,0,0,1.5\n0,0,1,2.5\n")
    np.testing.assert_allclose(out["var0"], [[1.5, 2.5]])


# ------------------------------------------------------------- rmr session
def test_rmr_session_multiple_inputs():
    from repro.cluster import DiskSpec, LinkSpec
    from repro.hdfs import HDFS
    from repro.mapreduce import TextInputFormat
    from repro.rlang.rmr import RMRSession, keyval

    env = Environment()
    cluster = Cluster(env)
    spec = NodeSpec(cpus=4, memory=10**9,
                    disks=(DiskSpec(bandwidth=10**6),),
                    nic=LinkSpec(bandwidth=10**7))
    nodes = [cluster.add_node(f"n{i}", spec) for i in range(2)]
    hdfs = HDFS(env, cluster.network, block_size=1000)
    for node in nodes:
        hdfs.add_datanode(node)
    hdfs.store_file_sync("/a/x.txt", b"p\n")
    hdfs.store_file_sync("/b/y.txt", b"q\n")
    session = RMRSession(env, nodes, hdfs, cluster.network)
    proc = env.process(session.mapreduce(
        input=["/a", "/b"], map=lambda k, v: keyval(v, 1),
        input_format=TextInputFormat(), name="multi"))
    env.run()
    assert sorted(k for k, _ in proc.value.map_records) == [b"p", b"q"]
