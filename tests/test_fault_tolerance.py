"""Failure injection across the stack: flaky tasks, dead datanodes,
failed OSTs."""

import numpy as np
import pytest

from repro.hdfs import HDFSError
from repro.mapreduce import JobConf, JobRunner, MapReduceError, \
    TextInputFormat
from repro.pfs import PFSError

from tests.mapreduce.conftest import run, world  # noqa: F401 (fixture)


# ----------------------------------------------------------- task retry
class FlakyMapper:
    """Fails the first ``n_failures`` invocations, then succeeds."""

    def __init__(self, n_failures):
        self.remaining = n_failures
        self.calls = 0

    def __call__(self, ctx, _offset, line):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise RuntimeError("transient task failure")
        for word in line.split():
            ctx.emit(word, 1)


def make_job(mapper, **kw):
    defaults = dict(
        name="flaky",
        mapper=mapper,
        reducer=lambda ctx, k, vs: ctx.emit(k, sum(vs)),
        input_format=TextInputFormat(),
        n_reducers=1,
        input_paths=["/in"],
        task_startup=0.01,
    )
    defaults.update(kw)
    return JobConf(**defaults)


def test_flaky_map_task_retried_and_job_succeeds(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"x y\n")
    mapper = FlakyMapper(n_failures=2)
    job = make_job(mapper)
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    got = {k: v for recs in result.outputs.values() for k, v in recs}
    assert got == {b"x": 1, b"y": 1}
    assert result.counters.value("job", "failed_map_attempts") == 2
    assert mapper.calls == 3


def test_permanently_failing_task_fails_job(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"x\n")

    def always_fails(ctx, _offset, _line):
        raise RuntimeError("bad task")

    job = make_job(always_fails, max_task_attempts=3)
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)

    def proc():
        yield from runner.run()

    with pytest.raises(MapReduceError, match="failed 3 times"):
        run(env, proc())


def test_max_attempts_validated(world):  # noqa: F811
    job = make_job(lambda *a: None, max_task_attempts=0)
    with pytest.raises(MapReduceError):
        job.validate()


# ------------------------------------------------------- datanode death
def test_read_fails_over_to_live_replica(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    hdfs.store_file_sync("/f", b"A" * 100, replication=2)
    block = hdfs.namenode.get_block_locations("/f")[0]
    assert len(block.locations) == 2
    hdfs.datanode(block.locations[0]).kill()
    reader_node = next(
        n for n in nodes if n.name not in block.locations)
    got = run(env, hdfs.client(reader_node).read_block(block))
    assert got == b"A" * 100


def test_read_fails_when_all_replicas_dead(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    hdfs.store_file_sync("/f", b"A" * 100)  # replication 1
    block = hdfs.namenode.get_block_locations("/f")[0]
    hdfs.datanode(block.locations[0]).kill()

    def proc():
        yield from hdfs.client(nodes[0]).read_block(block)

    with pytest.raises(HDFSError, match="unreachable"):
        run(env, proc())


def test_revived_datanode_serves_again(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    hdfs.store_file_sync("/f", b"B" * 50)
    block = hdfs.namenode.get_block_locations("/f")[0]
    datanode = hdfs.datanode(block.locations[0])
    datanode.kill()
    datanode.revive()
    got = run(env, hdfs.client(nodes[0]).read_block(block))
    assert got == b"B" * 50


def test_write_to_dead_datanode_raises(world):  # noqa: F811
    env, _cluster, hdfs, nodes = world
    hdfs.datanode(nodes[1].name).kill()
    client = hdfs.client(nodes[1])

    def proc():
        yield from client.write("/out", b"data")

    with pytest.raises(HDFSError, match="down"):
        run(env, proc())


# ------------------------------------------------------------ OST failure
def test_failed_ost_makes_striped_file_unreadable():
    from repro.cluster import Cluster
    from repro.pfs import PFS, PFSClient, StripeLayout
    from repro.sim import Environment
    from tests.pfs.conftest import small_spec

    env = Environment()
    cluster = Cluster(env)
    c0 = cluster.add_node("c0", small_spec(), role="compute")
    oss = cluster.add_node("oss", small_spec(n_disks=4), role="storage")
    pfs = PFS(env, cluster.network, oss, [oss])
    pfs.store_file("/f", bytes(400),
                   StripeLayout(stripe_size=100, stripe_count=4))
    client = PFSClient(pfs, c0)
    pfs.osts[1].fail()

    def proc():
        yield from client.read("/f")

    with pytest.raises(PFSError, match="failed"):
        run(env, proc())

    # Reads that avoid the failed OST still work.
    inode = pfs.mds.lookup("/f")
    ost0_only = [e for e in inode.layout.map_range(0, 400)
                 if inode.osts[e.ost_index] != 1]
    assert ost0_only  # sanity

    pfs.osts[1].recover()
    assert run(env, client.read("/f")) == bytes(400)


def test_scidp_job_survives_transient_ost_failure():
    """End-to-end: an OST fails mid-job; retried tasks succeed after
    recovery is triggered by the first failure."""
    import io
    from repro.cluster import Cluster
    from repro.core import SciDP
    from repro.formats import Dataset, scinc
    from repro.hdfs import HDFS
    from repro.pfs import PFS, StripeLayout
    from repro.sim import Environment
    from tests.pfs.conftest import small_spec

    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", small_spec(), role="compute")
             for i in range(2)]
    oss = cluster.add_node("oss", small_spec(n_disks=2), role="storage")
    pfs = PFS(env, cluster.network, oss, [oss],
              default_layout=StripeLayout(stripe_size=256, stripe_count=2))
    hdfs = HDFS(env, cluster.network, block_size=4096)
    for node in nodes:
        hdfs.add_datanode(node)
    scidp = SciDP(env, nodes, pfs, hdfs, cluster.network)

    ds = Dataset()
    ds.create_variable("v", ("z", "y"),
                       np.arange(64, dtype=np.float32).reshape(4, 16),
                       chunk_shape=(1, 16))
    buf = io.BytesIO()
    scinc.write(buf, ds)
    pfs.store_file("/d/f.nc", buf.getvalue())

    # Warm the virtual mapping first (the File Explorer's header probes
    # happen at job setup and are not retryable tasks)...
    warm = env.process(scidp.map_input("/d"))
    env.run()
    assert warm.value
    # ...then fail the OST that actually holds the variable's chunks
    # and bring it back shortly; the retry backoff (1 s default) lands
    # the second attempt after recovery.
    inode = pfs.mds.lookup("/d/f.nc")
    (_vp, blocks), = warm.value
    chunk_ost = inode.osts[
        inode.layout.map_range(blocks[0].virtual.offset, 1)[0].ost_index]
    pfs.osts[chunk_ost].fail()

    def recovery():
        yield env.timeout(0.5)
        pfs.osts[chunk_ost].recover()

    env.process(recovery())

    total = {"v": 0.0}

    def mapper(ctx, key, value):
        total["v"] += float(np.asarray(value, dtype=np.float64).sum())
        ctx.emit("ok", 1)

    job = JobConf(
        name="transient", mapper=mapper,
        input_format=scidp.input_format(),
        input_paths=["pfs:///d"], n_reducers=0, task_startup=0.0)
    proc = env.process(scidp.run_job(job))
    env.run()
    result = proc.value
    assert result.counters.value("job", "failed_map_attempts") >= 1
    assert total["v"] == float(np.arange(64).sum())


# --------------------------------------------------------- reduce retry
def test_flaky_reducer_retried_and_job_succeeds(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"x y\n")
    state = {"failures_left": 2}

    def flaky_reduce(ctx, key, values):
        if state["failures_left"] > 0:
            state["failures_left"] -= 1
            raise RuntimeError("transient reduce failure")
        ctx.emit(key, sum(values))

    job = make_job(
        lambda ctx, _o, line: [ctx.emit(w, 1) for w in line.split()],
        reducer=flaky_reduce, output_path="/out-rr")
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    got = {k: v for recs in result.outputs.values() for k, v in recs}
    assert got == {b"x": 1, b"y": 1}
    assert result.counters.value("job", "failed_reduce_attempts") == 2
    # The retried attempt committed its output idempotently.
    assert len(result.output_paths) == 1


def test_permanently_failing_reducer_fails_job(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"x\n")

    def bad_reduce(ctx, key, values):
        raise RuntimeError("reduce is broken")

    job = make_job(
        lambda ctx, _o, line: ctx.emit(line, 1),
        reducer=bad_reduce, max_task_attempts=2)
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)

    def proc():
        yield from runner.run()

    with pytest.raises(MapReduceError, match="reduce partition"):
        run(env, proc())


# -------------------------------------------------------- diskless spill
def test_diskless_spill_goes_through_storage(world):  # noqa: F811
    env, cluster, hdfs, nodes = world
    hdfs.store_file_sync("/in/a.txt", b"a b a\n" * 10)

    def wc_map(ctx, _o, line):
        for w in line.split():
            ctx.emit(w, 1)

    def wc_reduce(ctx, key, values):
        ctx.emit(key, sum(values))

    job = make_job(wc_map, reducer=wc_reduce, diskless_spill=True,
                   name="diskless")
    runner = JobRunner(env, nodes, hdfs, cluster.network, job)
    result = run(env, runner.run())
    got = {k: v for recs in result.outputs.values() for k, v in recs}
    assert got == {b"a": 20, b"b": 10}
    # Spill files landed in the storage namespace.
    spills = hdfs.namenode.listdir("/_spill")
    assert spills
