"""End-to-end animation phase: SciDP -> MapReduce -> animated GIFs."""

import numpy as np
import pytest

from repro import costs
from repro.mapreduce import JobConf
from repro.rlang.gif import decode_gif
from repro.workloads.pipeline import animation_mapper, animation_reducer
from repro.workloads.solutions import build_world


@pytest.fixture(autouse=True)
def _reset():
    yield
    costs.reset_scale()


def run_animation_job(world, n_reducers=2):
    job = JobConf(
        name="animate",
        mapper=animation_mapper("QR"),
        reducer=animation_reducer(resolution=(24, 24)),
        input_format=world.scidp.input_format(variables=["QR"]),
        input_paths=[f"pfs://{world.nc_dir}"],
        n_reducers=n_reducers,
        output_path="/results/animate",
        task_startup=0.0,
    )
    proc = world.env.process(world.scidp.run_job(job))
    world.env.run()
    return proc.value


def test_one_gif_per_level_with_all_timesteps():
    world = build_world(n_timesteps=3, shape=(4, 24, 24))
    result = run_animation_job(world)
    gifs = {k: v for records in result.outputs.values()
            for k, v in records}
    assert sorted(gifs) == [0, 1, 2, 3]      # one animation per level
    for z, gif in gifs.items():
        frames, _pal = decode_gif(gif)
        assert len(frames) == 3              # one frame per timestamp
        assert frames[0].shape == (24, 24)
    assert result.counters.value("pipeline", "animations") == 4
    assert result.counters.value("pipeline", "animation_frames") == 12


def test_animation_frames_ordered_by_timestamp():
    """The brightest frame must land at its generating timestamp."""
    world = build_world(n_timesteps=2, shape=(2, 16, 16))
    # Overwrite the dataset with a hand-built pair of files where QR at
    # t=1 dwarfs t=0.
    import io
    from repro.formats import Dataset, scinc
    for path in world.manifest["files"]:
        world.pfs.unlink(path)
    for t, scale_v in enumerate((0.0, 1.0)):
        ds = Dataset()
        data = np.full((2, 16, 16), scale_v, dtype=np.float32)
        data[:, 0, 0] = 1.0  # pin the series range
        ds.create_variable("QR", ("z", "y", "x"), data,
                           chunk_shape=(1, 16, 16))
        buf = io.BytesIO()
        scinc.write(buf, ds)
        world.pfs.store_file(f"{world.nc_dir}/anim_{t}.nc",
                             buf.getvalue())
    world.manifest["files"] = [
        f"{world.nc_dir}/anim_0.nc", f"{world.nc_dir}/anim_1.nc"]

    result = run_animation_job(world)
    gifs = {k: v for records in result.outputs.values()
            for k, v in records}
    frames, _ = decode_gif(gifs[0])
    # Frame 0 (t=0) is dark except the pinned pixel; frame 1 is bright.
    assert frames[0][5, 5] < frames[1][5, 5]


def test_animation_charges_encode_time():
    world = build_world(n_timesteps=2, shape=(2, 16, 16))
    result = run_animation_job(world)
    reduce_stats = result.stats_for("reduce")
    assert any(s.phases.get("animate", 0) > 0 for s in reduce_stats)
