"""End-to-end tests for the pipelined data path on the Fig. 5 workload.

The knobs (``max_inflight``, ``prefetch``, ``readahead_cache_bytes``)
must never change *what* a job computes — only when its reads happen.
"""

import pytest

from repro import costs
from repro.workloads.solutions import build_world, run_solution


@pytest.fixture(autouse=True)
def _reset_scale():
    yield
    costs.reset_scale()


def run_scidp(n_timesteps=4, slots_per_node=2, chopped=False, **kwargs):
    world = build_world(n_timesteps=n_timesteps,
                        slots_per_node=slots_per_node)
    if chopped:
        kwargs["granularity"] = max(
            1, int(costs.HADOOP_STREAM_READ_BYTES / costs.get_scale()))
    result = run_solution(world, "scidp", slots_per_node=slots_per_node,
                          **kwargs)
    costs.reset_scale()
    return result


def test_prefetch_does_not_change_results():
    serial = run_scidp(max_inflight=1)
    prefetched = run_scidp(prefetch=True)
    assert prefetched.frames == serial.frames
    assert (prefetched.counters["scidp"]["bytes_delivered"]
            == serial.counters["scidp"]["bytes_delivered"])


def test_prefetch_shortens_map_phase_when_saturated():
    """splits (32) > slots (16): staging is active and overlaps I/O."""
    serial = run_scidp(max_inflight=1)
    prefetched = run_scidp(prefetch=True)
    assert prefetched.map_phase_time < serial.map_phase_time
    assert prefetched.total_time <= serial.total_time
    datapath = prefetched.counters["datapath"]
    assert datapath["prefetches_launched"] > 0
    assert datapath["prefetch_fills"] > 0
    assert datapath["cache_hits"] > 0


def test_prefetch_stands_down_when_slots_outnumber_splits():
    """splits (32) < slots (64): staging would starve idle slots, so
    the guard keeps the prefetcher quiet and timings match serial."""
    serial = run_scidp(slots_per_node=8, max_inflight=1)
    prefetched = run_scidp(slots_per_node=8, max_inflight=1, prefetch=True)
    datapath = prefetched.counters["datapath"]
    assert datapath.get("prefetches_launched", 0) == 0
    assert datapath.get("prefetch_fills", 0) == 0
    assert prefetched.map_phase_time == pytest.approx(
        serial.map_phase_time)


def test_no_datapath_counters_with_knobs_off():
    serial = run_scidp(max_inflight=1)
    assert "datapath" not in serial.counters


def test_cache_bytes_knob_bounds_the_cache():
    """A tiny cache still works — it just evicts instead of hitting."""
    tiny = run_scidp(prefetch=True, readahead_cache_bytes=1)
    big = run_scidp(prefetch=True)
    assert tiny.frames == big.frames
    assert tiny.counters["datapath"]["cache_hits"] == 0
    assert big.counters["datapath"]["cache_hits"] > 0


def test_windowed_fetch_matches_serial_on_whole_block_reads():
    """SciDP's default path is one request per block, so the window is
    structurally inert there: identical simulated time."""
    serial = run_scidp(max_inflight=1)
    windowed = run_scidp(max_inflight=4)
    assert windowed.total_time == pytest.approx(serial.total_time)
    assert windowed.map_phase_time == pytest.approx(serial.map_phase_time)


def test_windowed_fetch_speeds_up_chopped_reads():
    serial = run_scidp(chopped=True, max_inflight=1)
    windowed = run_scidp(chopped=True, max_inflight=4)
    assert windowed.frames == serial.frames
    assert windowed.map_phase_time < serial.map_phase_time
