"""Tests for terasort, grep, and TestDFSIO over HDFS and the connector."""

import pytest

from repro import costs
from repro.cluster import Cluster, DiskSpec, LinkSpec, NodeSpec
from repro.hdfs import HDFS, PFSConnector
from repro.pfs import PFS, StripeLayout
from repro.sim import Environment
from repro.workloads.dfsio import run_dfsio_read, run_dfsio_write
from repro.workloads.grep import generate_text, run_grep
from repro.workloads.terasort import run_terasort, teragen, validate_sorted


@pytest.fixture(autouse=True)
def _reset_scale():
    costs.reset_scale()
    yield
    costs.reset_scale()


def spec(n_disks=1):
    return NodeSpec(
        cpus=8, memory=10**9,
        disks=tuple(DiskSpec(bandwidth=10**6, seek_latency=0.002)
                    for _ in range(n_disks)),
        nic=LinkSpec(bandwidth=10**7, latency=0.0001))


def make_worlds():
    """One cluster hosting both storage systems under test."""
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", spec(), role="compute")
             for i in range(4)]
    hdfs = HDFS(env, cluster.network, block_size=2000, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    oss = cluster.add_node("oss", spec(n_disks=4), role="storage")
    pfs = PFS(env, cluster.network, oss, [oss],
              default_layout=StripeLayout(stripe_size=512, stripe_count=4))
    connector = PFSConnector(pfs, block_size=2000, rpc_size=512,
                             lock_latency=0.002)
    return env, cluster, nodes, hdfs, connector


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


# ---------------------------------------------------------------- terasort
def test_terasort_sorts_correctly():
    env, cluster, nodes, hdfs, _conn = make_worlds()
    teragen(hdfs, "/tera-in/part-0", n_records=200)
    result, elapsed = run(env, run_terasort(
        env, nodes, hdfs, cluster.network, "/tera-in"))
    assert validate_sorted(result)
    assert elapsed > 0
    n_out = sum(len(r) for r in result.outputs.values())
    assert n_out == 200


def test_terasort_on_connector_same_answer_slower():
    env, cluster, nodes, hdfs, conn = make_worlds()
    data = teragen(hdfs, "/tera-in/part-0", n_records=150)
    teragen(conn, "/tera-in/part-0", n_records=150)

    r1, t_hdfs = run(env, run_terasort(
        env, nodes, hdfs, cluster.network, "/tera-in",
        output_path="/out-hdfs"))
    r2, t_conn = run(env, run_terasort(
        env, nodes, conn, cluster.network, "/tera-in",
        output_path="/out-conn"))
    assert validate_sorted(r1) and validate_sorted(r2)
    keys1 = sorted(k for recs in r1.outputs.values() for k, _ in recs)
    keys2 = sorted(k for recs in r2.outputs.values() for k, _ in recs)
    assert keys1 == keys2
    assert t_conn > t_hdfs  # the Fig. 2 relationship


# -------------------------------------------------------------------- grep
def test_grep_counts_matches():
    env, cluster, nodes, hdfs, _conn = make_worlds()
    data = generate_text(hdfs, "/corpus/a.txt", n_lines=300)
    (result, matches), elapsed = run(env, run_grep(
        env, nodes, hdfs, cluster.network, "/corpus", pattern=b"storm"))
    assert matches == data.count(b"storm")
    assert matches > 0
    assert elapsed > 0


def test_grep_pattern_absent():
    env, cluster, nodes, hdfs, _conn = make_worlds()
    generate_text(hdfs, "/corpus/a.txt", n_lines=50)
    (_result, matches), _elapsed = run(env, run_grep(
        env, nodes, hdfs, cluster.network, "/corpus",
        pattern=b"zzzqqq"))
    assert matches == 0


# ------------------------------------------------------------------ dfsio
def test_dfsio_write_then_read_roundtrip():
    env, cluster, nodes, hdfs, _conn = make_worlds()
    result_w, t_w, bw_w = run(env, run_dfsio_write(
        env, nodes, hdfs, cluster.network, n_files=4, bytes_per_file=3000))
    assert bw_w > 0
    written = sum(v for _k, v in result_w.map_records)
    assert written == 4 * 3000
    # Files actually exist on HDFS with the right sizes.
    for i in range(4):
        assert len(hdfs.read_file_sync(f"/dfsio/part-{i:04d}")) == 3000

    result_r, t_r, bw_r = run(env, run_dfsio_read(
        env, nodes, hdfs, cluster.network, n_files=4, bytes_per_file=3000))
    read = sum(v for _k, v in result_r.map_records)
    assert read == 4 * 3000
    assert bw_r > 0


def test_dfsio_connector_slower_than_hdfs():
    env, cluster, nodes, hdfs, conn = make_worlds()
    _res, t_hdfs, _bw = run(env, run_dfsio_write(
        env, nodes, hdfs, cluster.network, n_files=4, bytes_per_file=4000))
    _res2, t_conn, _bw2 = run(env, run_dfsio_write(
        env, nodes, conn, cluster.network, n_files=4, bytes_per_file=4000,
        control_path="/dfsio-control-conn"))
    assert t_conn > t_hdfs
