"""Tests for the synthetic NU-WRF generator."""

import io

import numpy as np
import pytest

from repro.formats import scinc
from repro.workloads.nuwrf import (
    NUWRF_VARIABLES,
    NUWRFConfig,
    generate_nuwrf,
    synthesize_timestep,
)


def small_config(**kw):
    defaults = dict(shape=(4, 24, 24), timesteps=2)
    defaults.update(kw)
    return NUWRFConfig(**defaults)


def test_data_model_matches_paper():
    """§IV-A: 23 single-precision variables, z*y*x, one file/timestamp."""
    assert len(NUWRF_VARIABLES) == 23
    assert "QR" in NUWRF_VARIABLES
    cfg = small_config()
    ds = synthesize_timestep(cfg, 0)
    assert len(ds.variables) == 23
    for var in ds.variables.values():
        assert var.dtype == np.float32
        assert var.shape == (4, 24, 24)
        assert var.chunk_shape == (1, 24, 24)  # one level per chunk


def test_generation_is_deterministic():
    cfg = small_config()
    a = synthesize_timestep(cfg, 1)
    b = synthesize_timestep(cfg, 1)
    np.testing.assert_array_equal(
        a.variables["QR"].data, b.variables["QR"].data)


def test_timesteps_differ():
    cfg = small_config()
    a = synthesize_timestep(cfg, 0)
    b = synthesize_timestep(cfg, 1)
    assert not np.array_equal(
        a.variables["T"].data, b.variables["T"].data)


def test_hydrometeors_sparse_and_nonnegative():
    cfg = small_config()
    ds = synthesize_timestep(cfg, 0)
    qr = ds.variables["QR"].data
    assert (qr >= 0).all()
    assert (qr == 0).mean() > 0.3  # rain covers part of the domain only


def test_compression_ratio_near_paper():
    """Paper: 298 MB -> ~91 MB per variable, ratio ~3.27."""
    cfg = NUWRFConfig(shape=(8, 48, 48), timesteps=1)
    ds = synthesize_timestep(cfg, 0)
    buf = io.BytesIO()
    scinc.write(buf, ds, compression_level=cfg.compression_level)
    ratio = cfg.raw_bytes_per_file / len(buf.getvalue())
    assert 2.8 <= ratio <= 3.8


def test_generate_writes_manifest(world=None):
    from tests.core.conftest import world as _w  # reuse fixture factory
    from repro.cluster import Cluster
    from repro.pfs import PFS
    from repro.sim import Environment
    from tests.core.conftest import small_spec

    env = Environment()
    cluster = Cluster(env)
    mds = cluster.add_node("mds", small_spec(), role="storage")
    oss = cluster.add_node("oss", small_spec(n_disks=2), role="storage")
    pfs = PFS(env, cluster.network, mds, [oss])
    cfg = small_config()
    manifest = generate_nuwrf(pfs, cfg, directory="/nuwrf")
    assert len(manifest["files"]) == 2
    assert manifest["raw_bytes"] == 2 * cfg.raw_bytes_per_file
    assert manifest["compression_ratio"] > 1.5
    for path in manifest["files"]:
        assert pfs.mds.exists(path)
    # Files are genuine SCNC containers with all 23 variables.
    reader = scinc.Reader(pfs.open_sync(manifest["files"][0]))
    assert len(reader.variable_paths()) == 23


def test_file_names_follow_paper_example():
    cfg = small_config()
    assert cfg.file_name(0) == "plot_18_00_00.nc"  # §III-A.1's example


def test_raw_byte_accounting():
    cfg = NUWRFConfig(shape=(50, 1250, 1250))
    assert cfg.raw_bytes_per_variable == 50 * 1250 * 1250 * 4  # 312.5 MB
    assert cfg.raw_bytes_per_file == cfg.raw_bytes_per_variable * 23
