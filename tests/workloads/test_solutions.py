"""Tests for the five solution drivers and the pipeline pieces."""

import numpy as np
import pytest

from repro import costs
from repro.rlang.png import decode_png
from repro.workloads.pipeline import (
    ANALYSES,
    binary_level_mapper,
    plot_seconds,
    text_level_mapper,
)
from repro.workloads.solutions import (
    SOLUTIONS,
    build_world,
    run_solution,
)


@pytest.fixture(autouse=True)
def _reset_scale():
    yield
    costs.reset_scale()


@pytest.fixture(scope="module")
def results():
    """Run every solution once on a tiny world (module-scoped: ~2s)."""
    out = {}
    for solution in SOLUTIONS:
        world = build_world(n_timesteps=2, shape=(4, 24, 24))
        out[solution] = run_solution(world, solution)
    costs.reset_scale()
    return out


def test_all_solutions_plot_every_level(results):
    for name, res in results.items():
        assert res.frames == 2 * 4, name  # timesteps x levels


def test_table1_data_paths(results):
    """Table I: who converts, who copies, and how."""
    assert results["naive"].conversion_time_not_counted > 0
    assert results["vanilla"].conversion_time_not_counted > 0
    assert results["porthadoop"].conversion_time_not_counted > 0
    assert results["scihadoop"].conversion_time_not_counted == 0
    assert results["scidp"].conversion_time_not_counted == 0

    assert results["naive"].copy_time > 0          # sequential copy
    assert results["vanilla"].copy_time > 0        # parallel copy
    assert results["porthadoop"].copy_time == 0    # no copy
    assert results["scihadoop"].copy_time > 0      # parallel copy
    assert results["scidp"].copy_time == 0         # no copy


def test_scidp_is_fastest_and_naive_slowest(results):
    totals = {name: res.total_time for name, res in results.items()}
    assert totals["scidp"] == min(totals.values())
    assert totals["naive"] == max(totals.values())


def test_convert_dominates_for_text_solutions(results):
    """Fig. 7 shape: Convert >> Read for the read.table path; tiny for
    the binary path."""
    for name in ("vanilla", "porthadoop"):
        phases = results[name].phase_means
        assert phases["convert"] > phases["read"], name
        assert phases["convert"] > 5 * results["scidp"].phase_means[
            "convert"], name


def test_scidp_read_per_level_near_paper(results):
    """§V-D: 0.035 s per level."""
    read = results["scidp"].phase_means["read"]
    assert 0.01 <= read <= 0.12


def test_plot_time_similar_across_parallel_solutions(results):
    plots = [results[n].phase_means["plot"]
             for n in ("vanilla", "porthadoop", "scidp")]
    assert max(plots) / min(plots) < 1.3
    # Naive plots slightly faster (no contention, §V-D).
    assert results["naive"].phase_means["plot"] < min(plots)


def test_run_solution_rejects_unknown():
    world = build_world(n_timesteps=1, shape=(2, 16, 16))
    with pytest.raises(ValueError):
        run_solution(world, "magic")
    costs.reset_scale()


# -------------------------------------------------------------- pipeline
class FakeCtx:
    def __init__(self):
        self.records = []
        self.charges = {}

        class Counters:
            def increment(self, *a, **k):
                pass
        self.counters = Counters()

    def emit(self, key, value):
        self.records.append((key, value))

    def charge(self, seconds, phase="compute"):
        self.charges[phase] = self.charges.get(phase, 0) + seconds


def test_binary_mapper_produces_decodable_png():
    ctx = FakeCtx()
    level = np.random.default_rng(0).random((1, 16, 16)).astype(np.float32)
    binary_level_mapper("QR")(ctx, ("f", "QR", (0, 0, 0)), level)
    (key, png), = ctx.records
    assert key[-1] == "png"
    img = decode_png(png)
    assert img.shape[2] == 3
    assert ctx.charges["plot"] > 0
    assert ctx.charges["convert"] > 0


def test_text_mapper_matches_binary_mapper_pixels():
    """Both data paths must produce the identical image for the same
    level — the functional equivalence behind Fig. 5's comparison."""
    from repro.workloads.solutions import _level_text
    rng = np.random.default_rng(1)
    level = (rng.random((12, 12)) * np.float32(1)).astype(np.float32)

    ctx_a = FakeCtx()
    binary_level_mapper("QR")(ctx_a, "k", level[None, ...])
    ctx_b = FakeCtx()
    text_level_mapper("QR")(ctx_b, "k", _level_text(level))
    assert ctx_a.records[0][1] == ctx_b.records[0][1]


def test_analysis_highlight_adds_markers():
    ctx = FakeCtx()
    level = np.zeros((8, 8), dtype=np.float32)
    level[3, 4] = 5.0
    points, extra = ANALYSES["highlight"](ctx, "k", level)
    assert (3, 4) in points
    assert len(points) == 8 * 8 and extra == [] or len(points) <= 10
    assert ctx.charges.get("analysis", 0) > 0


def test_analysis_top_percent_emits_rows():
    ctx = FakeCtx()
    level = np.random.default_rng(2).random((20, 20)).astype(np.float32)
    _points, extra = ANALYSES["top1pct"](ctx, "k", level)
    (key, rows), = extra
    assert key[-1] == "top1pct"
    assert rows.shape == (4, 3)  # 400 cells -> top 1% = 4 rows
    best = rows[0]
    assert best[2] == pytest.approx(level.max())


def test_plot_seconds_uses_scale():
    costs.set_scale(100.0)
    scaled = plot_seconds(1000)
    costs.reset_scale()
    unscaled = plot_seconds(1000)
    assert scaled > unscaled


def test_anlys_highlight_close_to_imgonly():
    """Fig. 9: highlight ~= no analysis; top1% costs more."""
    world = build_world(n_timesteps=2, shape=(4, 24, 24))
    base = run_solution(world, "scidp", analysis="none")
    world = build_world(n_timesteps=2, shape=(4, 24, 24))
    highlight = run_solution(world, "scidp", analysis="highlight")
    world = build_world(n_timesteps=2, shape=(4, 24, 24))
    top = run_solution(world, "scidp", analysis="top1pct")
    costs.reset_scale()
    assert highlight.total_time < 1.35 * base.total_time
    assert top.total_time > highlight.total_time
